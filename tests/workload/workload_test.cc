// Workload generators: patients data (§3/§6), scattered policies (§6.1) and
// the evaluation queries (§6.2).

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "core/catalog.h"
#include "engine/exec.h"
#include "sql/parser.h"
#include "workload/patients.h"
#include "workload/policies.h"
#include "workload/queries.h"

namespace aapac::workload {
namespace {

class PatientsTest : public ::testing::Test {
 protected:
  void Build(size_t patients, size_t samples) {
    db_ = std::make_unique<engine::Database>();
    PatientsConfig config;
    config.num_patients = patients;
    config.samples_per_patient = samples;
    ASSERT_TRUE(BuildPatientsDatabase(db_.get(), config).ok());
  }

  std::unique_ptr<engine::Database> db_;
};

TEST_F(PatientsTest, TableSizesMatchConfig) {
  Build(20, 7);
  EXPECT_EQ(db_->FindTable("users")->num_rows(), 20u);
  EXPECT_EQ(db_->FindTable("nutritional_profiles")->num_rows(), 20u);
  EXPECT_EQ(db_->FindTable("sensed_data")->num_rows(), 140u);
}

TEST_F(PatientsTest, SchemasMatchPaper) {
  Build(2, 2);
  const engine::Table* users = db_->FindTable("users");
  EXPECT_TRUE(users->schema().HasColumn("user_id"));
  EXPECT_TRUE(users->schema().HasColumn("watch_id"));
  EXPECT_TRUE(users->schema().HasColumn("nutritional_profile_id"));
  const engine::Table* sensed = db_->FindTable("sensed_data");
  for (const char* col :
       {"watch_id", "timestamp", "temperature", "position", "beats"}) {
    EXPECT_TRUE(sensed->schema().HasColumn(col)) << col;
  }
  const engine::Table* profiles = db_->FindTable("nutritional_profiles");
  for (const char* col : {"profile_id", "food_intolerances",
                          "food_preferences", "diet_type"}) {
    EXPECT_TRUE(profiles->schema().HasColumn(col)) << col;
  }
}

TEST_F(PatientsTest, ForeignKeysLineUp) {
  Build(10, 3);
  engine::Executor exec(db_.get());
  // Every sensed_data row joins back to exactly one user.
  auto rs = exec.ExecuteSql(
      "select count(*) from sensed_data join users on "
      "sensed_data.watch_id = users.watch_id");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows[0][0].AsInt(), 30);
  rs = exec.ExecuteSql(
      "select count(*) from users join nutritional_profiles on "
      "users.nutritional_profile_id = nutritional_profiles.profile_id");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows[0][0].AsInt(), 10);
}

TEST_F(PatientsTest, ValueDomainsExerciseQueryPredicates) {
  Build(50, 20);
  engine::Executor exec(db_.get());
  auto rs = exec.ExecuteSql(
      "select count(*) from sensed_data where temperature > 37");
  ASSERT_TRUE(rs.ok());
  const int64_t above37 = rs->rows[0][0].AsInt();
  EXPECT_GT(above37, 0);
  EXPECT_LT(above37, 1000);
  rs = exec.ExecuteSql("select count(*) from sensed_data where beats > 100");
  ASSERT_TRUE(rs.ok());
  EXPECT_GT(rs->rows[0][0].AsInt(), 0);
  rs = exec.ExecuteSql(
      "select count(*) from nutritional_profiles where diet_type like "
      "'low_sugar'");
  ASSERT_TRUE(rs.ok());
  EXPECT_GT(rs->rows[0][0].AsInt(), 0);
}

TEST_F(PatientsTest, GenerationIsDeterministic) {
  Build(5, 5);
  engine::Executor exec1(db_.get());
  auto rs1 = exec1.ExecuteSql("select sum(beats) from sensed_data");
  Build(5, 5);
  engine::Executor exec2(db_.get());
  auto rs2 = exec2.ExecuteSql("select sum(beats) from sensed_data");
  EXPECT_EQ(rs1->rows[0][0].AsInt(), rs2->rows[0][0].AsInt());
}

TEST_F(PatientsTest, AccessControlConfigurationMatchesFig2) {
  Build(2, 2);
  core::AccessControlCatalog catalog(db_.get());
  ASSERT_TRUE(catalog.Initialize().ok());
  ASSERT_TRUE(ConfigurePatientsAccessControl(&catalog).ok());
  EXPECT_EQ(catalog.purposes().size(), 8u);
  EXPECT_EQ(*catalog.purposes().Resolve("research"), "p6");
  EXPECT_EQ(catalog.CategoryOf("users", "user_id"),
            core::DataCategory::kIdentifier);
  EXPECT_EQ(catalog.CategoryOf("users", "watch_id"),
            core::DataCategory::kQuasiIdentifier);
  EXPECT_EQ(catalog.CategoryOf("sensed_data", "timestamp"),
            core::DataCategory::kGeneric);
  EXPECT_EQ(catalog.CategoryOf("sensed_data", "beats"),
            core::DataCategory::kSensitive);
  EXPECT_EQ(catalog.CategoryOf("nutritional_profiles", "diet_type"),
            core::DataCategory::kSensitive);
  for (const char* t : {"users", "sensed_data", "nutritional_profiles"}) {
    EXPECT_TRUE(catalog.IsProtected(t)) << t;
  }
}

// --- Scattered policies (§6.1). ---------------------------------------------

class ScatteredPolicyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<engine::Database>();
    PatientsConfig config;
    config.num_patients = 100;
    config.samples_per_patient = 10;
    ASSERT_TRUE(BuildPatientsDatabase(db_.get(), config).ok());
    catalog_ = std::make_unique<core::AccessControlCatalog>(db_.get());
    ASSERT_TRUE(catalog_->Initialize().ok());
    ASSERT_TRUE(ConfigurePatientsAccessControl(catalog_.get()).ok());
  }

  std::unique_ptr<engine::Database> db_;
  std::unique_ptr<core::AccessControlCatalog> catalog_;
};

TEST_F(ScatteredPolicyTest, RealizedSelectivityMatchesTarget) {
  for (double s : {0.0, 0.2, 0.4, 0.6, 1.0}) {
    ScatteredPolicyConfig config;
    config.selectivity = s;
    ASSERT_TRUE(ApplyScatteredPolicies(catalog_.get(), config).ok());
    for (const char* table : {"users", "nutritional_profiles"}) {
      auto measured = MeasureScanSelectivity(catalog_.get(), table);
      ASSERT_TRUE(measured.ok());
      EXPECT_NEAR(*measured, s, 0.011) << table << " s=" << s;
    }
    // sensed_data selectivity is per watch; with equal group sizes the
    // tuple-level fraction matches too.
    auto measured = MeasureScanSelectivity(catalog_.get(), "sensed_data");
    ASSERT_TRUE(measured.ok());
    EXPECT_NEAR(*measured, s, 0.011) << "sensed_data s=" << s;
  }
}

TEST_F(ScatteredPolicyTest, SameWatchSharesPolicy) {
  ScatteredPolicyConfig config;
  config.selectivity = 0.5;
  ASSERT_TRUE(ApplyScatteredPolicies(catalog_.get(), config).ok());
  engine::Table* sensed = db_->FindTable("sensed_data");
  auto watch_col = sensed->schema().FindColumn("watch_id");
  auto policy_col = sensed->schema().FindColumn("policy");
  std::map<std::string, std::string> policy_of_watch;
  for (size_t i = 0; i < sensed->num_rows(); ++i) {
    const std::string watch = sensed->row(i)[*watch_col].AsString();
    const std::string policy = sensed->row(i)[*policy_col].AsBytes();
    auto [it, inserted] = policy_of_watch.try_emplace(watch, policy);
    EXPECT_EQ(it->second, policy) << watch;
  }
  EXPECT_EQ(policy_of_watch.size(), 100u);
}

TEST_F(ScatteredPolicyTest, RuleCountsWithinConfiguredRange) {
  ScatteredPolicyConfig config;
  config.selectivity = 0.3;
  config.min_rules = 1;
  config.max_rules = 3;
  ASSERT_TRUE(ApplyScatteredPolicies(catalog_.get(), config).ok());
  auto layout = catalog_->LayoutFor("users");
  engine::Table* users = db_->FindTable("users");
  auto policy_col = users->schema().FindColumn("policy");
  std::set<size_t> rule_counts;
  for (size_t i = 0; i < users->num_rows(); ++i) {
    auto mask = BitString::FromBytes(users->row(i)[*policy_col].AsBytes());
    ASSERT_TRUE(mask.ok());
    ASSERT_EQ(mask->size() % layout->rule_mask_bits(), 0u);
    rule_counts.insert(mask->size() / layout->rule_mask_bits());
  }
  EXPECT_EQ(rule_counts, (std::set<size_t>{1, 2, 3}));
}

TEST_F(ScatteredPolicyTest, InvalidConfigRejected) {
  ScatteredPolicyConfig config;
  config.selectivity = 1.5;
  EXPECT_FALSE(ApplyScatteredPolicies(catalog_.get(), config).ok());
  config.selectivity = 0.5;
  config.min_rules = 0;
  EXPECT_FALSE(ApplyScatteredPolicies(catalog_.get(), config).ok());
  config.min_rules = 3;
  config.max_rules = 2;
  EXPECT_FALSE(ApplyScatteredPolicies(catalog_.get(), config).ok());
}

// --- Evaluation queries (§6.2). ----------------------------------------------

TEST(QueriesTest, PaperQueriesMatchFigure4) {
  const auto queries = PaperQueries();
  ASSERT_EQ(queries.size(), 8u);
  EXPECT_EQ(queries[0].name, "q1");
  EXPECT_NE(queries[0].sql.find("distinct watch_id"), std::string::npos);
  EXPECT_NE(queries[2].sql.find("watch100"), std::string::npos);
  EXPECT_NE(queries[5].sql.find("in (select profile_id"), std::string::npos);
  EXPECT_NE(queries[7].sql.find("beats>100"), std::string::npos);
  for (const auto& q : queries) {
    EXPECT_TRUE(sql::ParseSelect(q.sql).ok()) << q.name;
    EXPECT_FALSE(q.description.empty());
  }
}

TEST(QueriesTest, RandomQueriesFollowFig5Mix) {
  const auto queries = RandomQueries(42);
  ASSERT_EQ(queries.size(), 20u);
  std::map<std::string, std::set<std::string>> by_kind;
  for (const auto& q : queries) by_kind[q.description].insert(q.name);
  EXPECT_EQ(by_kind["single source + aggregate"],
            (std::set<std::string>{"r1", "r12", "r20"}));
  EXPECT_EQ(by_kind["join + aggregate + having"],
            (std::set<std::string>{"r2", "r7", "r17"}));
  EXPECT_EQ(by_kind["join"],
            (std::set<std::string>{"r3", "r4", "r14", "r16"}));
  EXPECT_EQ(by_kind["join + aggregate"],
            (std::set<std::string>{"r5", "r8", "r11", "r13", "r15", "r18"}));
  EXPECT_EQ(by_kind["single source"],
            (std::set<std::string>{"r6", "r9", "r10", "r19"}));
}

TEST(QueriesTest, RandomQueriesAreDeterministicPerSeed) {
  const auto a = RandomQueries(7);
  const auto b = RandomQueries(7);
  const auto c = RandomQueries(8);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].sql, b[i].sql);
  bool any_different = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].sql != c[i].sql) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(QueriesTest, RandomQueriesAllParse) {
  for (uint64_t seed : {1u, 2u, 3u, 1000u}) {
    for (const auto& q : RandomQueries(seed)) {
      EXPECT_TRUE(sql::ParseSelect(q.sql).ok()) << q.name << ": " << q.sql;
    }
  }
}

}  // namespace
}  // namespace aapac::workload
