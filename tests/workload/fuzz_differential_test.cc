// Grammar-driven differential fuzzer for the whole enforcement ladder, with
// the bind-time StaticVerdict pass as the primary target: unlike the fixed
// scattered-policy differential harness (differential_test.cc), this one
// generates the POLICY CATALOG as well as the query. Each round draws one
// profile per protected table from a small policy grammar
//
//   profile := all-allow(k)   — k distinct masks, every one admits the query
//            | all-deny(k)    — k distinct masks, none admits anything
//            | single-allow   — one dictionary id covering every row
//            | single-deny    — one dictionary id denying every row
//            | mixed(k)       — at least one allowing and one denying mask
//            | scattered(s)   — per-row coin with selectivity s
//
// laid out either fully shuffled (run length 1 — zone maps cannot settle)
// or in contiguous runs (zone maps settle whole blocks), so every (static
// class × zone shape) combination arises: all-allow and all-deny
// dictionaries are exactly the states the StaticVerdict pass settles at
// bind time, single-id profiles are the degenerate dictionaries, and the
// DML interleaved between pairs (uniform re-policy, single-row pokes,
// erasures, row duplication) flips tables BETWEEN static classes mid-run —
// a cached all-allow decision must die the moment one denying row lands.
//
// Every (catalog, query) pair executes the same nine legs as the fixed
// harness — (1) unenforced, (2) serial enforced default, (3)
// morsel-parallel, (4) verdict-memo off, (5) zone maps off, (6)
// StaticVerdict off, (7) index scans off, (8) vectorized executor off, (9)
// row path at DOP N — asserting legs (3)..(9) row-for-row identical to (2)
// with exactly equal logical check counts, that (2) only filters (1), and,
// for sub-query-free shapes, that (2) equals the brute-force reference
// monitor over a tuple-by-tuple pre-filtered clone. The harness keeps
// secondary indexes over the generator's filter columns and the DML
// interleaves include index DDL (drop / recreate with a random kind), so
// index maintenance and the stale-rebuild path run against every profile.
//
// On divergence the fuzzer MINIMIZES: the failing pair is re-run alone on a
// fresh database with the same catalog profile (the accumulated DML history
// dropped) and the failure message says whether the one-pair repro still
// diverges, alongside the replayable seed. Replay any failure with
// AAPAC_DIFF_SEED=<seed printed in the message>.
//
// Bounded for CI and TSan: stops at AAPAC_FUZZ_PAIRS pairs (default 500)
// or AAPAC_FUZZ_MS milliseconds (default 60000), whichever comes first.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "core/catalog.h"
#include "core/compliance.h"
#include "core/masks.h"
#include "core/monitor.h"
#include "core/signature_builder.h"
#include "engine/database.h"
#include "engine/exec.h"
#include "engine/index.h"
#include "engine/table.h"
#include "sql/parser.h"
#include "tests/util/query_gen.h"
#include "util/bitstring.h"
#include "util/task_pool.h"
#include "workload/patients.h"
#include "workload/policies.h"

namespace aapac {
namespace {

constexpr uint64_t kDefaultSeed = 20260808;

uint64_t SeedFromEnv() {
  const char* env = std::getenv("AAPAC_DIFF_SEED");
  if (env == nullptr || *env == '\0') return kDefaultSeed;
  return static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
}

size_t SizeFromEnv(const char* name, size_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  const long long parsed = std::atoll(env);
  return parsed > 0 ? static_cast<size_t>(parsed) : fallback;
}

size_t ThreadsFromEnv() {
  const char* env = std::getenv("AAPAC_THREADS");
  if (env == nullptr || *env == '\0') return 4;
  const long long parsed = std::atoll(env);
  return parsed > 0 ? static_cast<size_t>(parsed) : 4;
}

const char* const kProtectedTables[] = {"users", "sensed_data",
                                        "nutritional_profiles"};

// ---------------------------------------------------------------------------
// The policy grammar.

enum class Profile : int {
  kAllAllow = 0,
  kAllDeny,
  kSingleAllow,
  kSingleDeny,
  kMixed,
  kScattered,
};
constexpr int kNumProfiles = 6;

const char* ProfileName(Profile p) {
  switch (p) {
    case Profile::kAllAllow: return "all-allow";
    case Profile::kAllDeny: return "all-deny";
    case Profile::kSingleAllow: return "single-allow";
    case Profile::kSingleDeny: return "single-deny";
    case Profile::kMixed: return "mixed";
    case Profile::kScattered: return "scattered";
  }
  return "?";
}

/// One catalog draw: a profile per protected table plus the salt that makes
/// mask choice and layout deterministic — minimization re-applies the exact
/// same populations on a fresh database.
struct CatalogRound {
  Profile profiles[3] = {Profile::kScattered, Profile::kScattered,
                         Profile::kScattered};
  uint64_t salt = 0;

  std::string Describe() const {
    std::string out;
    for (size_t t = 0; t < 3; ++t) {
      out += std::string(kProtectedTables[t]) + "=" +
             ProfileName(profiles[t]) + (t + 1 < 3 ? " " : "");
    }
    return out + " salt=" + std::to_string(salt);
  }
};

/// One policy mask: `rules` rule masks, all pass-none, with a pass-all rule
/// at `pass_all_position` when the mask should admit everything (a pass-all
/// rule admits any action signature on the table; pass-none-only masks
/// admit nothing) — the same construction as the §6.1 generator.
std::string BuildMask(const core::MaskLayout& layout, int rules,
                      int pass_all_position) {
  BitString mask;
  for (int r = 0; r < rules; ++r) {
    mask.Append(r == pass_all_position ? layout.PassAllRuleMask()
                                       : layout.PassNoneRuleMask());
  }
  return mask.ToBytes();
}

// Distinct allowing masks vary (rules, pass-all position); distinct denying
// masks vary rule count. Distinct bytes ⇒ distinct dictionary ids, so
// all-allow(k) really sweeps k ids at classification time.
std::string AllowMask(const core::MaskLayout& layout, uint64_t k) {
  const int rules = 1 + static_cast<int>(k % 3);
  return BuildMask(layout, rules, static_cast<int>(k) % rules);
}
std::string DenyMask(const core::MaskLayout& layout, uint64_t k) {
  return BuildMask(layout, 1 + static_cast<int>(k % 3), -1);
}

/// Re-policies `table` according to `profile`, deterministically from
/// `salt`. Layout is either fully shuffled (run length 1) or contiguous
/// runs, chosen from the salt.
void ApplyProfile(core::AccessControlCatalog* catalog,
                  const std::string& table, Profile profile, uint64_t salt) {
  auto tbl_or = catalog->db()->GetTable(table);
  ASSERT_TRUE(tbl_or.ok());
  engine::Table* tbl = *tbl_or;
  auto layout_or = catalog->LayoutFor(table);
  ASSERT_TRUE(layout_or.ok());
  const core::MaskLayout& layout = *layout_or;
  auto pcol = tbl->schema().FindColumn(
      core::AccessControlCatalog::kPolicyColumn);
  ASSERT_TRUE(pcol.has_value());

  std::mt19937_64 rng(salt ^ std::hash<std::string>{}(table));
  std::vector<std::string> blobs;
  double deny_fraction = 0.0;  // Only used by kScattered.
  switch (profile) {
    case Profile::kAllAllow: {
      const uint64_t k = 1 + rng() % 4;
      for (uint64_t j = 0; j < k; ++j) blobs.push_back(AllowMask(layout, j));
      break;
    }
    case Profile::kAllDeny: {
      const uint64_t k = 1 + rng() % 3;
      for (uint64_t j = 0; j < k; ++j) blobs.push_back(DenyMask(layout, j));
      break;
    }
    case Profile::kSingleAllow:
      blobs.push_back(AllowMask(layout, rng() % 6));
      break;
    case Profile::kSingleDeny:
      blobs.push_back(DenyMask(layout, rng() % 3));
      break;
    case Profile::kMixed: {
      const uint64_t allows = 1 + rng() % 3;
      const uint64_t denies = 1 + rng() % 2;
      for (uint64_t j = 0; j < allows; ++j)
        blobs.push_back(AllowMask(layout, j));
      for (uint64_t j = 0; j < denies; ++j)
        blobs.push_back(DenyMask(layout, j));
      break;
    }
    case Profile::kScattered:
      deny_fraction = 0.1 + 0.8 * (static_cast<double>(rng() % 1000) / 1000.0);
      break;
  }

  // Intern each distinct blob once; rows then share dictionary ids.
  std::vector<engine::Value> values;
  for (const std::string& blob : blobs) {
    engine::Value v = engine::Value::Bytes(blob);
    tbl->InternColumnValue(*pcol, &v);
    values.push_back(std::move(v));
  }
  engine::Value scattered_allow, scattered_deny;
  if (profile == Profile::kScattered) {
    scattered_allow = engine::Value::Bytes(AllowMask(layout, rng() % 6));
    scattered_deny = engine::Value::Bytes(DenyMask(layout, rng() % 3));
    tbl->InternColumnValue(*pcol, &scattered_allow);
    tbl->InternColumnValue(*pcol, &scattered_deny);
  }

  const size_t n = tbl->num_rows();
  const bool contiguous_runs = (rng() & 1) != 0;
  for (size_t i = 0; i < n; ++i) {
    engine::Value v;
    if (profile == Profile::kScattered) {
      const bool deny =
          static_cast<double>(rng() % 1000) / 1000.0 < deny_fraction;
      v = deny ? scattered_deny : scattered_allow;
    } else if (contiguous_runs) {
      v = values[i * values.size() / std::max<size_t>(n, 1)];
    } else {
      v = values[i % values.size()];
    }
    tbl->mutable_row(i)[*pcol] = v;
  }
  // Policy bytes changed wholesale: version-tagged rewrites and cached
  // static-verdict decisions must die.
  catalog->BumpVersion();
}

void ApplyRound(core::AccessControlCatalog* catalog,
                const CatalogRound& round) {
  for (size_t t = 0; t < 3; ++t) {
    ApplyProfile(catalog, kProtectedTables[t], round.profiles[t],
                 round.salt + t);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

CatalogRound DrawRound(std::mt19937_64* rng) {
  CatalogRound round;
  for (auto& p : round.profiles) {
    p = static_cast<Profile>((*rng)() % kNumProfiles);
  }
  round.salt = (*rng)();
  return round;
}

// ---------------------------------------------------------------------------
// DML interleaves — class flips mid-run.

/// Mutates one protected table between pairs so its static class flips
/// while decisions for it may be cached: uniform re-policy (mixed →
/// all-allow / all-deny), a single denying poke (all-allow → mixed), row
/// erasure (can turn a mixed table uniform again), row duplication, or
/// index DDL (drop the fuzzer's index when present, else create one with a
/// random kind — subsequent probes hit the stale-rebuild path). Every
/// mutation path bumps intern_version; a stale cached decision surviving
/// any of them diverges leg (2) from leg (6) on the next pair.
void InterleaveDml(core::AccessControlCatalog* catalog,
                   std::mt19937_64* rng) {
  const std::string table = kProtectedTables[(*rng)() % 3];
  auto tbl_or = catalog->db()->GetTable(table);
  ASSERT_TRUE(tbl_or.ok());
  engine::Table* tbl = *tbl_or;
  if (tbl->num_rows() == 0) return;
  auto layout_or = catalog->LayoutFor(table);
  ASSERT_TRUE(layout_or.ok());
  const auto pcol = tbl->schema().FindColumn(
      core::AccessControlCatalog::kPolicyColumn);
  ASSERT_TRUE(pcol.has_value());

  switch ((*rng)() % 5) {
    case 0: {  // Flip the whole table to a uniform class.
      const Profile uniform = ((*rng)() & 1) != 0 ? Profile::kSingleAllow
                                                  : Profile::kSingleDeny;
      ApplyProfile(catalog, table, uniform, (*rng)());
      break;
    }
    case 1: {  // Poke a few rows with an opposing mask (uniform → mixed).
      const bool deny = ((*rng)() & 1) != 0;
      engine::Value v = engine::Value::Bytes(
          deny ? DenyMask(*layout_or, (*rng)() % 3)
               : AllowMask(*layout_or, (*rng)() % 6));
      tbl->InternColumnValue(*pcol, &v);
      std::vector<size_t> targets;
      const size_t n = 1 + (*rng)() % 8;
      for (size_t k = 0; k < n; ++k) {
        targets.push_back((*rng)() % tbl->num_rows());
      }
      tbl->UpdateColumnWhere(*pcol, v, targets);
      break;
    }
    case 2: {  // Erase rows — compaction can leave a uniform remainder.
      if (tbl->num_rows() <= 64) break;
      std::set<size_t> unique;
      const size_t n = 1 + (*rng)() % 5;
      for (size_t k = 0; k < n; ++k) unique.insert((*rng)() % tbl->num_rows());
      tbl->EraseRows(std::vector<size_t>(unique.begin(), unique.end()));
      break;
    }
    case 3: {  // Duplicate an existing row (insert through the write path).
      engine::Row row = tbl->row((*rng)() % tbl->num_rows());
      ASSERT_TRUE(tbl->Insert(std::move(row)).ok());
      break;
    }
    case 4: {  // Index DDL: drop the fuzzer's index when present, else
               // create one with a random kind — the next sargable query
               // over the column exercises the stale lazy-rebuild path.
      const char* column = nullptr;
      if (table == "sensed_data") {
        static const char* const kCols[] = {"timestamp", "beats", "watch_id",
                                            "position"};
        column = kCols[(*rng)() % 4];
      } else if (table == "users") {
        static const char* const kCols[] = {"user_id", "watch_id"};
        column = kCols[(*rng)() % 2];
      } else {
        static const char* const kCols[] = {"profile_id", "diet_type"};
        column = kCols[(*rng)() % 2];
      }
      const std::string name = "fuzz_" + table;
      if (tbl->HasIndex(name)) {
        ASSERT_TRUE(tbl->DropIndex(name).ok());
      } else {
        ASSERT_TRUE(tbl->CreateIndex(name, column,
                                     ((*rng)() & 1) != 0
                                         ? engine::IndexKind::kOrdered
                                         : engine::IndexKind::kHash)
                        .ok());
      }
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Harness + the nine-leg check, factored so minimization can re-run one
// pair on a fresh database.

std::string RenderRow(const engine::Row& row) {
  std::string out;
  for (const auto& v : row) {
    out += v.is_null() ? "NULL" : v.ToString();
    out += '|';
  }
  return out;
}

std::vector<std::string> RenderRows(const engine::ResultSet& rs) {
  std::vector<std::string> out;
  out.reserve(rs.rows.size());
  for (const auto& r : rs.rows) out.push_back(RenderRow(r));
  return out;
}

struct Harness {
  std::unique_ptr<engine::Database> db;
  std::unique_ptr<core::AccessControlCatalog> catalog;
  std::unique_ptr<core::EnforcementMonitor> monitor;
  std::unique_ptr<util::TaskPool> pool;

  Harness() {
    db = std::make_unique<engine::Database>();
    workload::PatientsConfig config;
    config.num_patients = 30;
    config.samples_per_patient = 24;  // 720 sensed_data rows.
    EXPECT_TRUE(workload::BuildPatientsDatabase(db.get(), config).ok());
    catalog = std::make_unique<core::AccessControlCatalog>(db.get());
    EXPECT_TRUE(catalog->Initialize().ok());
    EXPECT_TRUE(workload::ConfigurePatientsAccessControl(catalog.get()).ok());
    monitor =
        std::make_unique<core::EnforcementMonitor>(db.get(), catalog.get());
    pool = std::make_unique<util::TaskPool>(3);
    // Small zone blocks: scans cross many block boundaries and block
    // summaries (the live-id source of the StaticVerdict sweep) stay busy.
    for (const auto& name : db->TableNames()) {
      db->FindTable(name)->ResetZoneMap(64);
    }
    // Indexes over the generator's filter columns: the default legs probe
    // them whenever the first claimed conjunct is sargable, and the DML
    // interleaves (plus the index DDL case) keep maintenance and the
    // stale-rebuild path exercised against every catalog profile.
    engine::Table* sensed = db->FindTable("sensed_data");
    EXPECT_TRUE(
        sensed->CreateIndex("sensed_ts", "timestamp", engine::IndexKind::kOrdered)
            .ok());
    EXPECT_TRUE(
        sensed->CreateIndex("sensed_watch", "watch_id", engine::IndexKind::kHash)
            .ok());
    EXPECT_TRUE(db->FindTable("nutritional_profiles")
                    ->CreateIndex("profiles_diet", "diet_type",
                                  engine::IndexKind::kHash)
                    .ok());
  }
};

bool CollectMasks(const core::QuerySignature& qs,
                  const core::AccessControlCatalog& catalog,
                  const std::string& purpose,
                  std::map<std::string, std::vector<std::string>>* masks) {
  for (const core::TableSignature& ts : qs.tables) {
    if (!catalog.IsProtected(ts.table)) continue;
    auto layout = catalog.LayoutFor(ts.table);
    if (!layout.ok()) return false;
    auto& out = (*masks)[ts.table];
    for (const core::ActionSignature& as : ts.actions) {
      auto mask = layout->EncodeActionSignature(as, purpose);
      if (!mask.ok()) return false;
      out.push_back(mask->ToBytes());
    }
  }
  return true;
}

std::unique_ptr<engine::Database> BuildCompliantClone(
    const engine::Database& db,
    const std::map<std::string, std::vector<std::string>>& masks) {
  auto clone = std::make_unique<engine::Database>();
  for (const std::string& name : db.TableNames()) {
    const engine::Table* src = db.FindTable(name);
    auto created = clone->CreateTable(name, src->schema());
    if (!created.ok()) return nullptr;
    engine::Table* dst = *created;
    dst->Reserve(src->num_rows());
    const auto it = masks.find(name);
    if (it == masks.end()) {
      for (const auto& row : src->rows()) dst->InsertUnchecked(row);
      continue;
    }
    const auto policy_idx = src->schema().FindColumn(
        core::AccessControlCatalog::kPolicyColumn);
    if (!policy_idx.has_value()) return nullptr;
    for (const auto& row : src->rows()) {
      const engine::Value& policy = row[*policy_idx];
      if (policy.is_null()) continue;
      bool ok = true;
      for (const std::string& mask : it->second) {
        if (!core::CompliesWithPacked(mask, policy.AsBytes())) {
          ok = false;
          break;
        }
      }
      if (ok) dst->InsertUnchecked(row);
    }
  }
  return clone;
}

/// Runs all nine legs for one (catalog, query) pair and cross-checks them.
/// Returns "" on agreement, else a description of the first divergence.
std::string DivergenceFor(Harness& h, const testutil::GenQuery& q,
                          size_t threads) {
  auto fail = [&](const std::string& what) { return what; };

  auto unenforced = h.monitor->ExecuteUnrestricted(q.sql);  // Leg (1).
  if (!unenforced.ok()) return fail("unenforced: " + unenforced.status().ToString());

  struct Leg {
    std::vector<std::string> rows;
    uint64_t checks = 0;
  };
  auto run_enforced = [&](Leg* leg) -> std::string {
    const uint64_t before = h.monitor->compliance_checks();
    auto rs = h.monitor->ExecuteQuery(q.sql, q.purpose);
    leg->checks = h.monitor->compliance_checks() - before;
    if (!rs.ok()) return rs.status().ToString();
    leg->rows = RenderRows(*rs);
    return "";
  };

  h.monitor->SetParallelism(nullptr, 1);
  Leg serial;  // Leg (2): the default configuration.
  if (std::string e = run_enforced(&serial); !e.empty())
    return fail("serial: " + e);

  struct Variant {
    const char* name;
    std::function<void(core::EnforcementMonitor*, bool)> toggle;
    bool parallel;
  };
  const Variant variants[] = {
      // Leg (3): morsel-parallel, everything on.
      {"parallel", nullptr, true},
      // Leg (4): verdict memo off.
      {"memo-off",
       [](core::EnforcementMonitor* m, bool on) { m->SetVerdictMemoEnabled(on); },
       false},
      // Leg (5): zone maps off.
      {"zone-off",
       [](core::EnforcementMonitor* m, bool on) { m->SetZoneMapEnabled(on); },
       false},
      // Leg (6): StaticVerdict off — the pass must be invisible.
      {"static-off",
       [](core::EnforcementMonitor* m, bool on) {
         m->SetStaticVerdictEnabled(on);
       },
       false},
      // Leg (7): index scans off — sargable conjuncts take the full scan.
      {"index-off",
       [](core::EnforcementMonitor* m, bool on) {
         m->SetIndexScansEnabled(on);
       },
       false},
      // Leg (8): vectorized executor off, serial.
      {"vector-off",
       [](core::EnforcementMonitor* m, bool on) { m->SetVectorEnabled(on); },
       false},
      // Leg (9): vectorized executor off, morsel-parallel.
      {"vector-off-parallel",
       [](core::EnforcementMonitor* m, bool on) { m->SetVectorEnabled(on); },
       true},
  };
  for (const Variant& v : variants) {
    if (v.toggle) v.toggle(h.monitor.get(), false);
    if (v.parallel) {
      h.monitor->SetParallelism(threads > 1 ? h.pool.get() : nullptr, threads,
                                /*morsel_rows=*/64);
    }
    Leg leg;
    const std::string e = run_enforced(&leg);
    if (v.parallel) h.monitor->SetParallelism(nullptr, 1);
    if (v.toggle) v.toggle(h.monitor.get(), true);
    if (!e.empty()) return fail(std::string(v.name) + ": " + e);
    if (leg.rows.size() != serial.rows.size()) {
      return fail(std::string(v.name) + ": " + std::to_string(leg.rows.size()) +
                  " rows vs " + std::to_string(serial.rows.size()) +
                  " on the default leg");
    }
    for (size_t r = 0; r < serial.rows.size(); ++r) {
      if (leg.rows[r] != serial.rows[r]) {
        return fail(std::string(v.name) + ": row " + std::to_string(r) +
                    " [" + leg.rows[r] + "] vs [" + serial.rows[r] + "]");
      }
    }
    if (leg.checks != serial.checks) {
      return fail(std::string(v.name) + ": " + std::to_string(leg.checks) +
                  " compliance checks vs " + std::to_string(serial.checks) +
                  " on the default leg");
    }
  }

  // Enforcement only filters: every enforced tuple appears in the
  // unenforced result (aggregates/LIMIT/DISTINCT recompute over the
  // filtered input; the reference monitor covers those shapes).
  if (!q.aggregate && !q.has_limit && !q.distinct) {
    std::multiset<std::string> remaining;
    for (const auto& row : RenderRows(*unenforced)) remaining.insert(row);
    for (size_t r = 0; r < serial.rows.size(); ++r) {
      auto it = remaining.find(serial.rows[r]);
      if (it == remaining.end()) {
        return fail("containment: enforced row " + std::to_string(r) + " [" +
                    serial.rows[r] + "] not in the unenforced result");
      }
      remaining.erase(it);
    }
  }

  // Brute-force reference monitor for sub-query-free shapes.
  if (!q.has_subquery) {
    auto stmt = sql::ParseSelect(q.sql);
    if (!stmt.ok()) return fail("parse: " + stmt.status().ToString());
    core::SignatureBuilder builder(h.catalog.get());
    auto qs = builder.Derive(**stmt, q.purpose);
    if (!qs.ok()) return fail("signature: " + qs.status().ToString());
    std::map<std::string, std::vector<std::string>> masks;
    if (CollectMasks(**qs, *h.catalog, q.purpose, &masks)) {
      std::unique_ptr<engine::Database> clone =
          BuildCompliantClone(*h.db, masks);
      if (clone == nullptr) return fail("reference clone failed to build");
      engine::Executor ref(clone.get());
      auto expected = ref.ExecuteSql(q.sql);
      if (!expected.ok())
        return fail("reference: " + expected.status().ToString());
      const std::vector<std::string> expected_rows = RenderRows(*expected);
      if (serial.rows.size() != expected_rows.size()) {
        return fail("reference monitor: " + std::to_string(serial.rows.size()) +
                    " enforced rows vs " + std::to_string(expected_rows.size()) +
                    " brute-forced");
      }
      for (size_t r = 0; r < expected_rows.size(); ++r) {
        if (serial.rows[r] != expected_rows[r]) {
          return fail("reference monitor: row " + std::to_string(r) + " [" +
                      serial.rows[r] + "] vs [" + expected_rows[r] + "]");
        }
      }
    }
  }
  return "";
}

TEST(FuzzDifferentialTest, GrammarDrivenCatalogQueryPairs) {
  const uint64_t seed = SeedFromEnv();
  const size_t threads = ThreadsFromEnv();
  const size_t target_pairs = SizeFromEnv("AAPAC_FUZZ_PAIRS", 500);
  const size_t budget_ms = SizeFromEnv("AAPAC_FUZZ_MS", 60000);
  SCOPED_TRACE("replay with AAPAC_DIFF_SEED=" + std::to_string(seed));
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(budget_ms);

  Harness h;
  ASSERT_FALSE(::testing::Test::HasFailure());
  testutil::QueryGenerator gen(seed);
  // Separate streams: catalog draws and DML never perturb query generation,
  // so replays stay aligned when either grammar grows.
  std::mt19937_64 cat_rng(seed ^ 0x9e3779b97f4a7c15ULL);
  std::mt19937_64 dml_rng(seed ^ 0xc2b2ae3d27d4eb4fULL);

  CatalogRound round;
  size_t executed = 0;
  for (size_t i = 0; i < target_pairs; ++i) {
    if (std::chrono::steady_clock::now() >= deadline) break;
    // A fresh catalog draw every few pairs; DML flips classes in between,
    // so cached static decisions face both wholesale re-policy and
    // single-row invalidation while still version-tagged from prior pairs.
    if (i % 5 == 0) {
      round = DrawRound(&cat_rng);
      ApplyRound(h.catalog.get(), round);
      ASSERT_FALSE(::testing::Test::HasFatalFailure());
    } else if (i % 5 == 2 || i % 5 == 4) {
      InterleaveDml(h.catalog.get(), &dml_rng);
      ASSERT_FALSE(::testing::Test::HasFatalFailure());
    }

    const testutil::GenQuery q = gen.Next();
    const std::string ctx = "seed=" + std::to_string(seed) + " pair#" +
                            std::to_string(i) + " catalog{" +
                            round.Describe() + "} purpose=" + q.purpose +
                            " sql=" + q.sql;
    const std::string divergence = DivergenceFor(h, q, threads);
    if (!divergence.empty()) {
      // Minimize: same catalog profile on a fresh database (the DML
      // history dropped), just this query.
      Harness fresh;
      ApplyRound(fresh.catalog.get(), round);
      const std::string minimal = DivergenceFor(fresh, q, threads);
      FAIL() << ctx << "\n  divergence: " << divergence
             << (minimal.empty()
                     ? "\n  one-pair repro on a fresh database does NOT "
                       "reproduce — the accumulated DML history is part of "
                       "the trigger; replay the full run with the seed above"
                     : "\n  MINIMAL repro (fresh database, this catalog "
                       "round, this query alone) still diverges: " +
                           minimal);
    }
    ++executed;
  }

  std::printf("fuzz: %zu (catalog, query) pairs executed, seed=%llu, "
              "threads=%zu\n",
              executed, static_cast<unsigned long long>(seed), threads);
  // The time bound exists for sanitizer builds; an unsanitized run must get
  // through a meaningful slice of the grammar.
  EXPECT_GE(executed, std::min<size_t>(target_pairs, 50)) << "seed=" << seed;
}

}  // namespace
}  // namespace aapac
