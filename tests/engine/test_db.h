#ifndef AAPAC_TESTS_ENGINE_TEST_DB_H_
#define AAPAC_TESTS_ENGINE_TEST_DB_H_

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "engine/database.h"
#include "engine/exec.h"

namespace aapac::engine {

/// Builds a small fixed dataset exercising every type and NULLs:
///
///   items(id, name, price, qty, active)
///     1  apple   1.5  10  true
///     2  banana  0.5  20  true
///     3  cherry  3.0  NULL false
///     4  NULL    2.0  5   NULL
///     5  apple   NULL 10  true
///
///   orders(order_id, item_id, amount)
///     100 1 2 | 101 1 3 | 102 2 1 | 103 3 4 | 104 9 1   (9 dangles)
inline std::unique_ptr<Database> MakeTestDb() {
  auto db = std::make_unique<Database>();
  {
    Schema s;
    EXPECT_TRUE(s.AddColumn({"id", ValueType::kInt64}).ok());
    EXPECT_TRUE(s.AddColumn({"name", ValueType::kString}).ok());
    EXPECT_TRUE(s.AddColumn({"price", ValueType::kDouble}).ok());
    EXPECT_TRUE(s.AddColumn({"qty", ValueType::kInt64}).ok());
    EXPECT_TRUE(s.AddColumn({"active", ValueType::kBool}).ok());
    Table* t = *db->CreateTable("items", s);
    EXPECT_TRUE(t->Insert({Value::Int(1), Value::String("apple"),
                           Value::Double(1.5), Value::Int(10),
                           Value::Bool(true)})
                    .ok());
    EXPECT_TRUE(t->Insert({Value::Int(2), Value::String("banana"),
                           Value::Double(0.5), Value::Int(20),
                           Value::Bool(true)})
                    .ok());
    EXPECT_TRUE(t->Insert({Value::Int(3), Value::String("cherry"),
                           Value::Double(3.0), Value::Null(),
                           Value::Bool(false)})
                    .ok());
    EXPECT_TRUE(t->Insert({Value::Int(4), Value::Null(), Value::Double(2.0),
                           Value::Int(5), Value::Null()})
                    .ok());
    EXPECT_TRUE(t->Insert({Value::Int(5), Value::String("apple"),
                           Value::Null(), Value::Int(10), Value::Bool(true)})
                    .ok());
  }
  {
    Schema s;
    EXPECT_TRUE(s.AddColumn({"order_id", ValueType::kInt64}).ok());
    EXPECT_TRUE(s.AddColumn({"item_id", ValueType::kInt64}).ok());
    EXPECT_TRUE(s.AddColumn({"amount", ValueType::kInt64}).ok());
    Table* t = *db->CreateTable("orders", s);
    const int64_t rows[][3] = {
        {100, 1, 2}, {101, 1, 3}, {102, 2, 1}, {103, 3, 4}, {104, 9, 1}};
    for (const auto& r : rows) {
      EXPECT_TRUE(t->Insert({Value::Int(r[0]), Value::Int(r[1]),
                             Value::Int(r[2])})
                      .ok());
    }
  }
  return db;
}

/// Executes and stringifies rows ("a|b|c"), sorted for order-insensitive
/// comparison.
inline std::vector<std::string> ExecSorted(Database* db,
                                           const std::string& sql) {
  Executor exec(db);
  auto rs = exec.ExecuteSql(sql);
  EXPECT_TRUE(rs.ok()) << sql << " -> " << rs.status();
  std::vector<std::string> out;
  if (!rs.ok()) return out;
  for (const Row& row : rs->rows) {
    std::string line;
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) line += "|";
      line += row[i].ToString();
    }
    out.push_back(std::move(line));
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Executes and returns the raw result set (order preserved).
inline ResultSet Exec(Database* db, const std::string& sql) {
  Executor exec(db);
  auto rs = exec.ExecuteSql(sql);
  EXPECT_TRUE(rs.ok()) << sql << " -> " << rs.status();
  return rs.ok() ? std::move(*rs) : ResultSet{};
}

/// Expects the statement to fail with `code`.
inline void ExpectExecError(Database* db, const std::string& sql,
                            StatusCode code) {
  Executor exec(db);
  auto rs = exec.ExecuteSql(sql);
  EXPECT_FALSE(rs.ok()) << sql << " unexpectedly succeeded";
  if (!rs.ok()) {
    EXPECT_EQ(rs.status().code(), code) << rs.status();
  }
}

}  // namespace aapac::engine

#endif  // AAPAC_TESTS_ENGINE_TEST_DB_H_
