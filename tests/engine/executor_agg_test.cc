// Aggregation: COUNT/SUM/AVG/MIN/MAX, GROUP BY, HAVING, DISTINCT
// aggregates, NULL handling, empty inputs.

#include <gtest/gtest.h>

#include "tests/engine/test_db.h"

namespace aapac::engine {
namespace {

class AggTest : public ::testing::Test {
 protected:
  void SetUp() override { db_ = MakeTestDb(); }
  std::unique_ptr<Database> db_;
};

TEST_F(AggTest, CountStarCountsRows) {
  ResultSet rs = Exec(db_.get(), "select count(*) from items");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].AsInt(), 5);
}

TEST_F(AggTest, CountColumnSkipsNulls) {
  ResultSet rs =
      Exec(db_.get(), "select count(name), count(price), count(qty) from items");
  EXPECT_EQ(rs.rows[0][0].AsInt(), 4);
  EXPECT_EQ(rs.rows[0][1].AsInt(), 4);
  EXPECT_EQ(rs.rows[0][2].AsInt(), 4);
}

TEST_F(AggTest, SumAvgMinMax) {
  ResultSet rs = Exec(db_.get(),
                      "select sum(qty), avg(qty), min(qty), max(qty) from items");
  EXPECT_EQ(rs.rows[0][0].AsInt(), 45);
  EXPECT_EQ(rs.rows[0][1].AsDouble(), 11.25);  // 45 / 4 non-null values.
  EXPECT_EQ(rs.rows[0][2].AsInt(), 5);
  EXPECT_EQ(rs.rows[0][3].AsInt(), 20);
}

TEST_F(AggTest, SumOfDoublesStaysDouble) {
  ResultSet rs = Exec(db_.get(), "select sum(price) from items");
  EXPECT_EQ(rs.rows[0][0].type(), ValueType::kDouble);
  EXPECT_EQ(rs.rows[0][0].AsDouble(), 7.0);
}

TEST_F(AggTest, MinMaxOnStrings) {
  ResultSet rs = Exec(db_.get(), "select min(name), max(name) from items");
  EXPECT_EQ(rs.rows[0][0].AsString(), "apple");
  EXPECT_EQ(rs.rows[0][1].AsString(), "cherry");
}

TEST_F(AggTest, EmptyInputGlobalAggregate) {
  ResultSet rs =
      Exec(db_.get(), "select count(*), sum(qty), avg(qty), min(qty) "
                      "from items where id > 100");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].AsInt(), 0);
  EXPECT_TRUE(rs.rows[0][1].is_null());
  EXPECT_TRUE(rs.rows[0][2].is_null());
  EXPECT_TRUE(rs.rows[0][3].is_null());
}

TEST_F(AggTest, GroupByProducesOneRowPerGroup) {
  auto rows =
      ExecSorted(db_.get(), "select name, count(*) from items group by name");
  EXPECT_EQ(rows, (std::vector<std::string>{"NULL|1", "apple|2", "banana|1",
                                            "cherry|1"}));
}

TEST_F(AggTest, GroupByEmptyInputYieldsNoRows) {
  ResultSet rs = Exec(db_.get(),
                      "select name, count(*) from items where id > 100 "
                      "group by name");
  EXPECT_TRUE(rs.rows.empty());
}

TEST_F(AggTest, GroupByMultipleColumns) {
  auto rows = ExecSorted(
      db_.get(), "select name, qty, count(*) from items group by name, qty");
  // (apple, 10) occurs twice and collapses into one group of two.
  EXPECT_EQ(rows, (std::vector<std::string>{"NULL|5|1", "apple|10|2",
                                            "banana|20|1", "cherry|NULL|1"}));
}

TEST_F(AggTest, GroupByExpression) {
  auto rows = ExecSorted(
      db_.get(), "select qty % 2, count(*) from items where qty is not null "
                 "group by qty % 2");
  EXPECT_EQ(rows, (std::vector<std::string>{"0|3", "1|1"}));
}

TEST_F(AggTest, HavingFiltersGroups) {
  auto rows = ExecSorted(
      db_.get(),
      "select name, count(*) from items group by name having count(*) > 1");
  EXPECT_EQ(rows, (std::vector<std::string>{"apple|2"}));
}

TEST_F(AggTest, HavingWithAggregateNotInSelect) {
  auto rows = ExecSorted(
      db_.get(),
      "select name from items group by name having max(qty) >= 20");
  EXPECT_EQ(rows, (std::vector<std::string>{"banana"}));
}

TEST_F(AggTest, CountDistinct) {
  ResultSet rs = Exec(db_.get(), "select count(distinct name), "
                                 "count(distinct qty) from items");
  EXPECT_EQ(rs.rows[0][0].AsInt(), 3);
  EXPECT_EQ(rs.rows[0][1].AsInt(), 3);
}

TEST_F(AggTest, SumAndAvgDistinct) {
  ResultSet rs =
      Exec(db_.get(), "select sum(distinct qty), avg(distinct qty) from items");
  EXPECT_EQ(rs.rows[0][0].AsInt(), 35);               // 10 + 20 + 5.
  EXPECT_NEAR(rs.rows[0][1].AsDouble(), 35.0 / 3, 1e-9);
}

TEST_F(AggTest, AggregateInsideExpression) {
  ResultSet rs = Exec(db_.get(),
                      "select max(qty) - min(qty), abs(sum(qty) - 50) "
                      "from items");
  EXPECT_EQ(rs.rows[0][0].AsInt(), 15);
  EXPECT_EQ(rs.rows[0][1].AsInt(), 5);
}

TEST_F(AggTest, GroupKeyAvailableInSelect) {
  auto rows = ExecSorted(db_.get(),
                         "select active, sum(qty) from items "
                         "where qty is not null group by active");
  EXPECT_EQ(rows,
            (std::vector<std::string>{"NULL|5", "true|40"}));
}

TEST_F(AggTest, AggregateOverJoin) {
  ResultSet rs = Exec(db_.get(),
                      "select sum(amount * price) from orders join items on "
                      "orders.item_id = items.id");
  // 2*1.5 + 3*1.5 + 1*0.5 + 4*3.0 = 20.0
  EXPECT_EQ(rs.rows[0][0].AsDouble(), 20.0);
}

TEST_F(AggTest, GroupedJoin) {
  auto rows = ExecSorted(db_.get(),
                         "select name, sum(amount) from orders join items on "
                         "orders.item_id = items.id group by name");
  EXPECT_EQ(rows, (std::vector<std::string>{"apple|5", "banana|1",
                                            "cherry|4"}));
}

TEST_F(AggTest, AggregateErrors) {
  // Aggregates not allowed in WHERE.
  ExpectExecError(db_.get(), "select id from items where sum(qty) > 1",
                  StatusCode::kBindError);
  // Nested aggregates.
  ExpectExecError(db_.get(), "select sum(max(qty)) from items",
                  StatusCode::kBindError);
  // sum over strings.
  ExpectExecError(db_.get(), "select sum(name) from items",
                  StatusCode::kExecutionError);
  // * only valid in count.
  ExpectExecError(db_.get(), "select sum(*) from items",
                  StatusCode::kBindError);
  // Star select item in aggregate query unsupported.
  ExpectExecError(db_.get(), "select * from items group by id",
                  StatusCode::kUnsupported);
}

TEST_F(AggTest, MinMaxSkipNullsEntirelyNull) {
  ResultSet rs = Exec(db_.get(),
                      "select min(price), max(price) from items where id = 5");
  EXPECT_TRUE(rs.rows[0][0].is_null());
  EXPECT_TRUE(rs.rows[0][1].is_null());
}

}  // namespace
}  // namespace aapac::engine
