// Sub-queries: IN sub-queries (hashed), scalar sub-queries, derived tables,
// nesting, and NULL semantics.

#include <gtest/gtest.h>

#include "tests/engine/test_db.h"

namespace aapac::engine {
namespace {

class SubqueryTest : public ::testing::Test {
 protected:
  void SetUp() override { db_ = MakeTestDb(); }
  std::unique_ptr<Database> db_;
};

TEST_F(SubqueryTest, InSubquery) {
  auto rows = ExecSorted(db_.get(),
                         "select name from items where id in "
                         "(select item_id from orders)");
  EXPECT_EQ(rows, (std::vector<std::string>{"apple", "banana", "cherry"}));
}

TEST_F(SubqueryTest, NotInSubquery) {
  auto rows = ExecSorted(db_.get(),
                         "select id from items where id not in "
                         "(select item_id from orders)");
  EXPECT_EQ(rows, (std::vector<std::string>{"4", "5"}));
}

TEST_F(SubqueryTest, NotInWithNullInSubqueryFiltersAll) {
  Table* orders = db_->FindTable("orders");
  ASSERT_TRUE(
      orders->Insert({Value::Int(105), Value::Null(), Value::Int(1)}).ok());
  auto rows = ExecSorted(db_.get(),
                         "select id from items where id not in "
                         "(select item_id from orders)");
  EXPECT_TRUE(rows.empty());  // x NOT IN (..., NULL) is never TRUE.
}

TEST_F(SubqueryTest, InSubqueryWithFilter) {
  auto rows = ExecSorted(db_.get(),
                         "select name from items where id in "
                         "(select item_id from orders where amount > 2)");
  EXPECT_EQ(rows, (std::vector<std::string>{"apple", "cherry"}));
}

TEST_F(SubqueryTest, ScalarSubqueryAsValue) {
  ResultSet rs = Exec(db_.get(),
                      "select id, (select max(amount) from orders) from items "
                      "where id = 1");
  EXPECT_EQ(rs.rows[0][1].AsInt(), 4);
}

TEST_F(SubqueryTest, ScalarSubqueryInWhere) {
  auto rows = ExecSorted(db_.get(),
                         "select id from items where qty > "
                         "(select avg(qty) from items)");
  EXPECT_EQ(rows, (std::vector<std::string>{"2"}));
}

TEST_F(SubqueryTest, ScalarSubqueryEmptyYieldsNull) {
  ResultSet rs = Exec(db_.get(),
                      "select (select qty from items where id = 99) from "
                      "items where id = 1");
  EXPECT_TRUE(rs.rows[0][0].is_null());
}

TEST_F(SubqueryTest, ScalarSubqueryMultipleRowsIsError) {
  ExpectExecError(db_.get(),
                  "select (select qty from items) from items",
                  StatusCode::kExecutionError);
}

TEST_F(SubqueryTest, DerivedTable) {
  auto rows = ExecSorted(db_.get(),
                         "select s.n from (select name as n from items "
                         "where active) s");
  EXPECT_EQ(rows, (std::vector<std::string>{"apple", "apple", "banana"}));
}

TEST_F(SubqueryTest, DerivedTableWithAggregation) {
  ResultSet rs = Exec(db_.get(),
                      "select max(s.total) from (select item_id, "
                      "sum(amount) as total from orders group by item_id) s");
  EXPECT_EQ(rs.rows[0][0].AsInt(), 5);  // item 1: 2+3.
}

TEST_F(SubqueryTest, JoinWithDerivedTable) {
  auto rows = ExecSorted(
      db_.get(),
      "select items.name, s.total from items join (select item_id, "
      "sum(amount) as total from orders group by item_id) s on "
      "items.id = s.item_id");
  EXPECT_EQ(rows, (std::vector<std::string>{"apple|5", "banana|1",
                                            "cherry|4"}));
}

TEST_F(SubqueryTest, NestedDerivedTables) {
  ResultSet rs = Exec(db_.get(),
                      "select count(*) from (select x.id from (select id "
                      "from items where qty is not null) x where x.id > 1) y");
  EXPECT_EQ(rs.rows[0][0].AsInt(), 3);  // ids 2, 4, 5.
}

TEST_F(SubqueryTest, SubqueryInsideHaving) {
  auto rows = ExecSorted(
      db_.get(),
      "select item_id, sum(amount) from orders group by item_id "
      "having sum(amount) >= (select max(amount) from orders)");
  EXPECT_EQ(rows, (std::vector<std::string>{"1|5", "3|4"}));
}

TEST_F(SubqueryTest, DerivedTableAliasIsRequiredForColumns) {
  // Columns of the derived table resolve through the alias or bare name.
  auto rows = ExecSorted(db_.get(),
                         "select n from (select name as n from items) q "
                         "where n like 'b%'");
  EXPECT_EQ(rows, (std::vector<std::string>{"banana"}));
}

TEST_F(SubqueryTest, CorrelatedSubqueryIsRejected) {
  // Outer column reference inside the sub-query cannot bind.
  ExpectExecError(db_.get(),
                  "select id from items where id in "
                  "(select item_id from orders where amount = items.qty)",
                  StatusCode::kBindError);
}

}  // namespace
}  // namespace aapac::engine
