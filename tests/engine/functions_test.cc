#include "engine/functions.h"

#include <gtest/gtest.h>

#include "tests/engine/test_db.h"

namespace aapac::engine {
namespace {

TEST(FunctionsTest, AggregateNameClassification) {
  for (const char* name : {"count", "sum", "avg", "min", "max"}) {
    EXPECT_TRUE(IsAggregateFunctionName(name)) << name;
  }
  for (const char* name : {"abs", "length", "complies_with", ""}) {
    EXPECT_FALSE(IsAggregateFunctionName(name)) << name;
  }
}

TEST(FunctionsTest, RegistryLookupIsCaseNormalized) {
  FunctionRegistry reg = FunctionRegistry::WithBuiltins();
  EXPECT_NE(reg.Find("abs"), nullptr);
  EXPECT_EQ(reg.Find("ABS"), nullptr);  // Lookups take lowercase names.
  ScalarFunction fn;
  fn.name = "MyFn";
  fn.arity = 0;
  fn.fn = [](const std::vector<Value>&) -> Result<Value> {
    return Value::Int(7);
  };
  reg.Register(fn);
  EXPECT_NE(reg.Find("myfn"), nullptr);  // Registration lowers the name.
}

TEST(FunctionsTest, RegisterReplaces) {
  FunctionRegistry reg = FunctionRegistry::WithBuiltins();
  ScalarFunction fn;
  fn.name = "abs";
  fn.arity = 1;
  fn.fn = [](const std::vector<Value>&) -> Result<Value> {
    return Value::Int(-1);
  };
  reg.Register(fn);
  auto v = reg.Find("abs")->fn({Value::Int(5)});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt(), -1);
}

TEST(FunctionsTest, BuiltinsHandleNulls) {
  FunctionRegistry reg = FunctionRegistry::WithBuiltins();
  for (const char* name : {"abs", "length", "lower", "upper", "round"}) {
    auto v = reg.Find(name)->fn({Value::Null()});
    ASSERT_TRUE(v.ok()) << name;
    EXPECT_TRUE(v->is_null()) << name;
  }
}

TEST(FunctionsTest, BuiltinsRejectWrongTypes) {
  FunctionRegistry reg = FunctionRegistry::WithBuiltins();
  EXPECT_FALSE(reg.Find("abs")->fn({Value::String("x")}).ok());
  EXPECT_FALSE(reg.Find("length")->fn({Value::Int(1)}).ok());
  EXPECT_FALSE(reg.Find("floor")->fn({Value::Bool(true)}).ok());
}

TEST(FunctionsTest, CoalesceVariadic) {
  FunctionRegistry reg = FunctionRegistry::WithBuiltins();
  const ScalarFunction* coalesce = reg.Find("coalesce");
  EXPECT_EQ(coalesce->arity, -1);
  auto v = coalesce->fn({Value::Null(), Value::Null(), Value::Int(3)});
  EXPECT_EQ(v->AsInt(), 3);
  v = coalesce->fn({Value::Null()});
  EXPECT_TRUE(v->is_null());
  v = coalesce->fn({});
  EXPECT_TRUE(v->is_null());
}

TEST(FunctionsTest, UdfUsableFromSql) {
  auto db = MakeTestDb();
  int calls = 0;
  ScalarFunction fn;
  fn.name = "double_it";
  fn.arity = 1;
  fn.fn = [&calls](const std::vector<Value>& args) -> Result<Value> {
    ++calls;
    if (args[0].is_null()) return Value::Null();
    return Value::Int(args[0].AsInt() * 2);
  };
  db->functions().Register(fn);
  ResultSet rs = Exec(db.get(), "select double_it(qty) from items where id=1");
  EXPECT_EQ(rs.rows[0][0].AsInt(), 20);
  EXPECT_EQ(calls, 1);
}

TEST(FunctionsTest, UdfErrorsPropagate) {
  auto db = MakeTestDb();
  ScalarFunction fn;
  fn.name = "boom";
  fn.arity = 0;
  fn.fn = [](const std::vector<Value>&) -> Result<Value> {
    return Status::ExecutionError("boom");
  };
  db->functions().Register(fn);
  ExpectExecError(db.get(), "select boom() from items",
                  StatusCode::kExecutionError);
}

}  // namespace
}  // namespace aapac::engine
