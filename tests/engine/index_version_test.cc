// Secondary indexes under copy-on-write table versioning (engine/index.h +
// engine/table.h + util/epoch.h): a pinned reader's probes resolve against
// its snapshot's index while a writer publishes inserts, updates, deletes
// and even DROP INDEX; cloned versions start with stale index definitions
// and rebuild lazily against their own row vector; and no version (or the
// index it owns) is reclaimed while a pinned reader can still reach it.
// TSan covers the concurrent cases in CI.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "engine/index.h"
#include "engine/table.h"
#include "tests/engine/test_db.h"
#include "util/epoch.h"

namespace aapac::engine {
namespace {

Row MakeItem(int64_t id, int64_t qty) {
  return {Value::Int(id), Value::String("probe"), Value::Double(1.0),
          Value::Int(qty), Value::Bool(true)};
}

size_t QtyIdx(const Table* t) {
  return *t->schema().FindColumn("qty");
}

/// Probes the reader-visible version's index for `qty = key` and returns
/// the matching slot count (0 when the key is absent).
size_t ProbeQty(const Table* t, int64_t key) {
  const SecondaryIndex* idx = t->FindIndexOn(QtyIdx(t), /*need_range=*/false);
  EXPECT_NE(idx, nullptr);
  if (idx == nullptr) return 0;
  const std::vector<uint32_t>* slots = idx->Lookup(Value::Int(key));
  return slots == nullptr ? 0 : slots->size();
}

TEST(IndexVersionTest, WriterProbesItsOwnUncommittedIndex) {
  std::unique_ptr<Database> db = MakeTestDb();
  Table* items = db->FindTable("items");
  ASSERT_TRUE(items->CreateIndex("ix_qty", "qty", IndexKind::kHash).ok());
  db->EnableVersioning();

  const size_t before = ProbeQty(items, 10);  // Rows 1 and 5.
  EXPECT_EQ(before, 2u);
  items->BeginWrite();
  ASSERT_TRUE(items->Insert(MakeItem(6, 10)).ok());
  // Read-your-writes through the index: the working copy's clone went
  // stale on CloneVersion and rebuilds here against the working rows.
  EXPECT_EQ(ProbeQty(items, 10), before + 1);
  db->PublishWrites();
  EXPECT_EQ(ProbeQty(items, 10), before + 1);
  db->DisableVersioning();
}

TEST(IndexVersionTest, PinnedReaderProbesItsSnapshotAcrossPublishes) {
  std::unique_ptr<Database> db = MakeTestDb();
  Table* items = db->FindTable("items");
  ASSERT_TRUE(items->CreateIndex("ix_qty", "qty", IndexKind::kHash).ok());
  db->EnableVersioning();

  std::atomic<bool> captured{false};
  std::atomic<bool> published{false};
  size_t during = 0;
  std::thread reader([&] {
    util::EpochManager::Pin pin(util::EpochManager::Instance());
    TableSnapshot snap;
    snap.Capture(*db);
    TableSnapshot::ScopedUse use(&snap);
    // First probe builds the snapshot's index against the snapshot rows.
    EXPECT_EQ(ProbeQty(items, 10), 2u);
    captured.store(true, std::memory_order_release);
    while (!published.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    // The writer has published an insert, an update moving row 0's qty to
    // 10, and a delete — this snapshot's index must still answer with the
    // state it captured.
    during = ProbeQty(items, 10);
  });
  while (!captured.load(std::memory_order_acquire)) std::this_thread::yield();

  items->BeginWrite();
  ASSERT_TRUE(items->Insert(MakeItem(7, 10)).ok());
  // Slot 3 is id 4 with qty 5 — the update moves it into the probed key.
  items->UpdateColumnWhere(QtyIdx(items), Value::Int(10), {3});
  // Slot 2 is id 3 with qty NULL — outside the probed key; erasing it
  // compacts every later slot, which the index must track.
  EXPECT_GT(items->EraseRows({2}), 0u);
  db->PublishWrites();
  published.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(during, 2u)
      << "a pinned snapshot's index observed writes published after capture";
  {
    TableSnapshot snap;
    snap.Capture(*db);
    TableSnapshot::ScopedUse use(&snap);
    // Fresh snapshot: the original pair (ids 1 and 5), the insert, and the
    // updated id 4.
    EXPECT_EQ(ProbeQty(items, 10), 4u);
  }
  db->DisableVersioning();
}

TEST(IndexVersionTest, PinnedReaderSurvivesConcurrentDropIndex) {
  std::unique_ptr<Database> db = MakeTestDb();
  Table* items = db->FindTable("items");
  ASSERT_TRUE(items->CreateIndex("ix_qty", "qty", IndexKind::kHash).ok());
  db->EnableVersioning();

  std::atomic<bool> pinned{false};
  std::atomic<bool> done{false};
  std::atomic<uint64_t> mismatches{0};
  std::thread reader([&] {
    util::EpochManager::Pin pin(util::EpochManager::Instance());
    TableSnapshot snap;
    snap.Capture(*db);
    TableSnapshot::ScopedUse use(&snap);
    pinned.store(true, std::memory_order_release);
    // Keep probing the pinned version's index while the writer drops it
    // from later versions and churns rows. If the superseded version (or
    // its index) were reclaimed while reachable, these probes are
    // use-after-free — caught by ASan/TSan outright; the count check
    // additionally catches torn state.
    while (!done.load(std::memory_order_acquire)) {
      if (ProbeQty(items, 10) != 2u) {
        mismatches.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::yield();
    }
  });
  while (!pinned.load(std::memory_order_acquire)) std::this_thread::yield();

  items->BeginWrite();
  ASSERT_TRUE(items->DropIndex("ix_qty").ok());
  db->PublishWrites();
  // Churn more versions and aggressively attempt reclamation: the pinned
  // version must survive every attempt.
  for (int i = 0; i < 50; ++i) {
    items->BeginWrite();
    ASSERT_TRUE(items->Insert(MakeItem(100 + i, 3)).ok());
    db->PublishWrites();
    util::EpochManager::Instance().TryReclaim();
  }
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(mismatches.load(std::memory_order_relaxed), 0u)
      << "a pinned reader's index probes saw another version's state";

  // Reader gone: the current version has no index on qty any more.
  util::EpochManager::Instance().TryReclaim();
  {
    TableSnapshot snap;
    snap.Capture(*db);
    TableSnapshot::ScopedUse use(&snap);
    EXPECT_EQ(items->FindIndexOn(QtyIdx(items), /*need_range=*/false),
              nullptr);
    EXPECT_FALSE(items->HasIndex("ix_qty"));
  }
  db->DisableVersioning();
}

TEST(IndexVersionTest, ConcurrentReadersLazilyRebuildOneSharedClone) {
  // Several pinned readers race EnsureCurrent on the same stale clone (the
  // publish marked it stale); the rebuild mutex must serialize them onto
  // one consistent structure. TSan-checked in CI.
  std::unique_ptr<Database> db = MakeTestDb();
  Table* items = db->FindTable("items");
  ASSERT_TRUE(items->CreateIndex("ix_qty", "qty", IndexKind::kHash).ok());
  db->EnableVersioning();
  items->BeginWrite();
  ASSERT_TRUE(items->Insert(MakeItem(8, 10)).ok());
  db->PublishWrites();  // The published version's index is a stale clone.

  constexpr int kReaders = 4;
  std::atomic<uint64_t> wrong{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      util::EpochManager::Pin pin(util::EpochManager::Instance());
      TableSnapshot snap;
      snap.Capture(*db);
      TableSnapshot::ScopedUse use(&snap);
      for (int i = 0; i < 200; ++i) {
        if (ProbeQty(items, 10) != 3u) {
          wrong.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : readers) t.join();
  EXPECT_EQ(wrong.load(std::memory_order_relaxed), 0u);
  db->DisableVersioning();
}

}  // namespace
}  // namespace aapac::engine
