// Policy zone maps (engine/zone_map.h): block-summary maintenance across
// every interning write path, dirty-block laziness, the overflow-threshold
// boundary, and the executor fast path — block skip / bulk-accept must be
// invisible next to the per-tuple path in both result rows and logical
// check counts, including after in-place policy rewrites and erasures. The
// parallel test shares one zone map across morsel lanes and across
// concurrent statements (TSan covers it in CI).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/catalog.h"
#include "core/monitor.h"
#include "engine/database.h"
#include "engine/table.h"
#include "engine/value.h"
#include "engine/zone_map.h"
#include "obs/metrics.h"
#include "util/task_pool.h"
#include "workload/patients.h"
#include "workload/policies.h"
#include "workload/queries.h"

namespace aapac {
namespace {

using engine::PolicyZoneMap;
using engine::Table;
using engine::Value;

Table MakeTable() {
  engine::Schema schema;
  EXPECT_TRUE(schema.AddColumn({"id", engine::ValueType::kInt64}).ok());
  EXPECT_TRUE(schema.AddColumn({"policy", engine::ValueType::kBytes}).ok());
  return Table("t", std::move(schema));
}

uint32_t IdOf(const Table& t, size_t row) {
  return t.row(row)[1].bytes_interned_id();
}

bool BlockHasId(const PolicyZoneMap::BlockSummary& s, uint32_t id) {
  for (uint8_t i = 0; i < s.num_ids; ++i) {
    if (s.ids[i] == id) return true;
  }
  return false;
}

TEST(PolicyZoneMapTest, AppendsMaintainSummariesIncrementally) {
  Table t = MakeTable();
  t.SetInternColumn(1);
  t.ResetZoneMap(4);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        t.Insert({Value::Int(i), Value::Bytes(i < 5 ? "A" : "B")}).ok());
  }
  const PolicyZoneMap* z = t.zone_map();
  ASSERT_NE(z, nullptr);
  EXPECT_EQ(z->num_rows(), 10u);
  EXPECT_EQ(z->num_blocks(), 3u);
  // Appends keep blocks exact: nothing dirty, summaries ready without a
  // rebuild.
  EXPECT_FALSE(z->any_dirty());
  const uint32_t a = IdOf(t, 0);
  const uint32_t b = IdOf(t, 9);
  ASSERT_NE(a, 0u);
  ASSERT_NE(b, 0u);
  ASSERT_NE(a, b);
  EXPECT_EQ(z->block(0).num_ids, 1);  // Rows 0-3: all A.
  EXPECT_TRUE(BlockHasId(z->block(0), a));
  EXPECT_EQ(z->block(1).num_ids, 2);  // Rows 4-7: A then B.
  EXPECT_TRUE(BlockHasId(z->block(1), a));
  EXPECT_TRUE(BlockHasId(z->block(1), b));
  EXPECT_EQ(z->block(2).num_ids, 1);  // Rows 8-9: all B.
  EXPECT_TRUE(BlockHasId(z->block(2), b));
  EXPECT_FALSE(z->block(0).overflow);
  EXPECT_FALSE(z->block(0).untracked);
}

TEST(PolicyZoneMapTest, NullPolicyMarksBlockUntracked) {
  Table t = MakeTable();
  t.SetInternColumn(1);
  t.ResetZoneMap(4);
  ASSERT_TRUE(t.Insert({Value::Int(0), Value::Bytes("A")}).ok());
  ASSERT_TRUE(t.Insert({Value::Int(1), Value::Null()}).ok());
  const PolicyZoneMap* z = t.zone_map();
  EXPECT_TRUE(z->block(0).untracked);
  EXPECT_EQ(z->block(0).num_ids, 1);
}

TEST(PolicyZoneMapTest, UpdateColumnWhereDirtiesOnlyTouchedBlocks) {
  Table t = MakeTable();
  t.SetInternColumn(1);
  t.ResetZoneMap(4);
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(t.Insert({Value::Int(i), Value::Bytes("A")}).ok());
  }
  ASSERT_EQ(t.UpdateColumnWhere(1, Value::Bytes("B"), {5}), 1u);
  const PolicyZoneMap* z = t.zone_map();
  EXPECT_TRUE(z->any_dirty());
  EXPECT_FALSE(z->dirty(0));
  EXPECT_TRUE(z->dirty(1));
  EXPECT_FALSE(z->dirty(2));
  // Laziness: the stale summary still shows the pre-update single id.
  EXPECT_EQ(z->block(1).num_ids, 1);
  t.EnsureZoneCurrent();
  EXPECT_FALSE(z->any_dirty());
  EXPECT_EQ(z->block(1).num_ids, 2);
  EXPECT_TRUE(BlockHasId(z->block(1), IdOf(t, 5)));
  // Blocks the update never touched kept their exact summaries.
  EXPECT_EQ(z->block(0).num_ids, 1);
  EXPECT_EQ(z->block(2).num_ids, 1);
}

TEST(PolicyZoneMapTest, MutableRowConservativelyDirties) {
  Table t = MakeTable();
  t.SetInternColumn(1);
  t.ResetZoneMap(4);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(t.Insert({Value::Int(i), Value::Bytes("A")}).ok());
  }
  // Even a non-policy write dirties the block: mutable_row cannot know
  // which cell the caller rewrites, and policy attachment writes the mask
  // through exactly this path.
  t.mutable_row(6)[0] = Value::Int(99);
  const PolicyZoneMap* z = t.zone_map();
  EXPECT_FALSE(z->dirty(0));
  EXPECT_TRUE(z->dirty(1));
  t.EnsureZoneCurrent();
  EXPECT_FALSE(z->any_dirty());
  EXPECT_EQ(z->block(1).num_ids, 1);
}

TEST(PolicyZoneMapTest, EraseRowsDirtiesFromFirstErasedAndShrinks) {
  Table t = MakeTable();
  t.SetInternColumn(1);
  t.ResetZoneMap(4);
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(
        t.Insert({Value::Int(i), Value::Bytes(i < 6 ? "A" : "B")}).ok());
  }
  ASSERT_EQ(t.EraseRows({5, 9}), 2u);
  const PolicyZoneMap* z = t.zone_map();
  EXPECT_EQ(z->num_rows(), 10u);
  EXPECT_EQ(z->num_blocks(), 3u);
  // Compaction shifts everything from the first erased row on.
  EXPECT_TRUE(z->dirty(1));
  EXPECT_TRUE(z->dirty(2));
  t.EnsureZoneCurrent();
  EXPECT_FALSE(z->any_dirty());
  EXPECT_EQ(z->block(2).num_ids, 1);  // Rows 8-9 are now both B.
  EXPECT_TRUE(BlockHasId(z->block(2), IdOf(t, 9)));
}

TEST(PolicyZoneMapTest, TruncateAndClearResize) {
  Table t = MakeTable();
  t.SetInternColumn(1);
  t.ResetZoneMap(4);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.Insert({Value::Int(i), Value::Bytes("A")}).ok());
  }
  t.TruncateTo(6);
  const PolicyZoneMap* z = t.zone_map();
  EXPECT_EQ(z->num_rows(), 6u);
  EXPECT_EQ(z->num_blocks(), 2u);
  EXPECT_TRUE(z->dirty(1));  // Partial tail block rebuilds lazily.
  t.EnsureZoneCurrent();
  EXPECT_FALSE(z->any_dirty());
  t.Clear();
  EXPECT_EQ(z->num_rows(), 0u);
  EXPECT_EQ(z->num_blocks(), 0u);
  // Appends after a clear restart exact summaries.
  ASSERT_TRUE(t.Insert({Value::Int(0), Value::Bytes("B")}).ok());
  t.EnsureZoneCurrent();
  EXPECT_EQ(z->num_blocks(), 1u);
  EXPECT_TRUE(BlockHasId(z->block(0), IdOf(t, 0)));
}

TEST(PolicyZoneMapTest, OverflowExactlyAtThresholdBoundary) {
  Table t = MakeTable();
  t.SetInternColumn(1);
  t.ResetZoneMap(16);
  for (size_t i = 0; i < PolicyZoneMap::kMaxDistinct; ++i) {
    ASSERT_TRUE(t.Insert({Value::Int(static_cast<int64_t>(i)),
                          Value::Bytes("mask-" + std::to_string(i))})
                    .ok());
  }
  const PolicyZoneMap* z = t.zone_map();
  // Exactly kMaxDistinct distinct ids still enumerate.
  EXPECT_EQ(z->block(0).num_ids, PolicyZoneMap::kMaxDistinct);
  EXPECT_FALSE(z->block(0).overflow);
  // One more tips the block into overflow; min/max stay maintained.
  ASSERT_TRUE(t.Insert({Value::Int(99), Value::Bytes("mask-extra")}).ok());
  EXPECT_TRUE(z->block(0).overflow);
  uint32_t min_id = IdOf(t, 0);
  uint32_t max_id = IdOf(t, 0);
  for (size_t i = 1; i < t.num_rows(); ++i) {
    min_id = std::min(min_id, IdOf(t, i));
    max_id = std::max(max_id, IdOf(t, i));
  }
  EXPECT_EQ(z->block(0).min_id, min_id);
  EXPECT_EQ(z->block(0).max_id, max_id);
  // A rebuild reproduces the same overflow state.
  t.mutable_row(0)[0] = Value::Int(-1);
  t.EnsureZoneCurrent();
  EXPECT_TRUE(z->block(0).overflow);
  EXPECT_EQ(z->block(0).min_id, min_id);
  EXPECT_EQ(z->block(0).max_id, max_id);
}

TEST(PolicyZoneMapTest, SetInternColumnSeedsZoneMapForProtectedTables) {
  // ProtectTable funnels through SetInternColumn: protecting a populated
  // table must leave a zone map whose first rebuild reflects the data.
  Table t = MakeTable();
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(t.Insert({Value::Int(i), Value::Bytes("uniform")}).ok());
  }
  EXPECT_EQ(t.zone_map(), nullptr);
  t.SetInternColumn(1);
  const PolicyZoneMap* z = t.zone_map();
  ASSERT_NE(z, nullptr);
  EXPECT_EQ(z->num_rows(), 6u);
  EXPECT_TRUE(z->any_dirty());  // Re-interning starts every block stale.
  t.EnsureZoneCurrent();
  EXPECT_FALSE(z->any_dirty());
  EXPECT_EQ(z->block(0).num_ids, 1);
  EXPECT_TRUE(BlockHasId(z->block(0), IdOf(t, 0)));
}

// ---------------------------------------------------------------------------
// Query-level coverage: the executor fast path against the per-tuple path.
// ---------------------------------------------------------------------------

struct Instance {
  std::unique_ptr<engine::Database> db;
  std::unique_ptr<core::AccessControlCatalog> catalog;
  std::unique_ptr<core::EnforcementMonitor> monitor;

  explicit Instance(uint64_t policy_seed, double selectivity) {
    db = std::make_unique<engine::Database>();
    workload::PatientsConfig config;
    config.num_patients = 20;
    config.samples_per_patient = 30;  // 600 sensed_data rows.
    EXPECT_TRUE(workload::BuildPatientsDatabase(db.get(), config).ok());
    catalog = std::make_unique<core::AccessControlCatalog>(db.get());
    EXPECT_TRUE(catalog->Initialize().ok());
    EXPECT_TRUE(workload::ConfigurePatientsAccessControl(catalog.get()).ok());
    workload::ScatteredPolicyConfig sp;
    sp.seed = policy_seed;
    sp.selectivity = selectivity;
    EXPECT_TRUE(workload::ApplyScatteredPolicies(catalog.get(), sp).ok());
    monitor = std::make_unique<core::EnforcementMonitor>(db.get(),
                                                         catalog.get());
    // Small blocks so the 600-row scans cross many block boundaries.
    for (const auto& name : db->TableNames()) {
      db->FindTable(name)->ResetZoneMap(8);
    }
  }
};

std::string RenderRows(const engine::ResultSet& rs) {
  std::string out;
  for (const auto& row : rs.rows) {
    for (const auto& v : row) {
      out += v.is_null() ? "NULL" : v.ToString();
      out += '|';
    }
    out += '\n';
  }
  return out;
}

std::pair<std::string, uint64_t> RunQuery(core::EnforcementMonitor* monitor,
                                          const std::string& sql,
                                          const std::string& purpose) {
  const uint64_t before = monitor->compliance_checks();
  auto rs = monitor->ExecuteQuery(sql, purpose);
  EXPECT_TRUE(rs.ok()) << sql << "\n  " << rs.status();
  if (!rs.ok()) return {"<error>", 0};
  return {RenderRows(*rs), monitor->compliance_checks() - before};
}

TEST(PolicyZoneMapTest, QueryFastPathMatchesPerTupleIncludingAfterDml) {
  Instance inst(/*policy_seed=*/13, /*selectivity=*/0.35);
  const auto queries = workload::PaperQueries();
  auto compare_all = [&](const std::string& stage) {
    for (const auto& q : queries) {
      inst.monitor->SetZoneMapEnabled(false);
      const auto direct = RunQuery(inst.monitor.get(), q.sql, "p3");
      inst.monitor->SetZoneMapEnabled(true);
      const auto zoned = RunQuery(inst.monitor.get(), q.sql, "p3");
      ASSERT_EQ(zoned.first, direct.first) << stage << " " << q.name;
      ASSERT_EQ(zoned.second, direct.second)
          << stage << " " << q.name
          << "\n  zone map changed the logical check count";
    }
  };
  compare_all("initial");
  // The fast path must actually have engaged, not silently fallen back.
  const uint64_t decided =
      inst.monitor->metrics()->counter(obs::kZoneBlocksSkipped)->value() +
      inst.monitor->metrics()
          ->counter(obs::kZoneBlocksBulkAccepted)
          ->value();
  EXPECT_GT(decided, 0u);

  // In-place policy rewrites and erasures dirty blocks; lazy rebuild must
  // restore agreement.
  engine::Table* sensed = inst.db->FindTable("sensed_data");
  ASSERT_NE(sensed, nullptr);
  const size_t pcol = *sensed->intern_column();
  const Value moved = sensed->row(0)[pcol];
  std::vector<size_t> touched;
  for (size_t i = 40; i < sensed->num_rows(); i += 97) touched.push_back(i);
  sensed->UpdateColumnWhere(pcol, moved, touched);
  compare_all("after-update");
  ASSERT_GT(sensed->EraseRows({3, 50, 51, 200}), 0u);
  compare_all("after-erase");
}

TEST(PolicyZoneMapTest, ParallelSharedZoneResolutionIsRaceFree) {
  // Morsel lanes concurrently decide blocks of one shared zone map against
  // one shared verdict table; concurrent statements additionally race
  // reader-triggered rebuilds through EnsureCurrent. Both must be clean
  // under TSan and agree with the serial per-tuple reference.
  Instance inst(/*policy_seed=*/7, /*selectivity=*/0.35);
  inst.db->FindTable("sensed_data")->ResetZoneMap(16);
  util::TaskPool pool(3);
  const std::string sql = "SELECT beats FROM sensed_data";

  inst.monitor->SetZoneMapEnabled(false);
  const auto reference = RunQuery(inst.monitor.get(), sql, "p3");
  inst.monitor->SetZoneMapEnabled(true);

  // Dirty a few blocks so the driver-side rebuild runs before fan-out.
  engine::Table* sensed = inst.db->FindTable("sensed_data");
  const size_t pcol = *sensed->intern_column();
  sensed->UpdateColumnWhere(pcol, sensed->row(0)[pcol], {5, 17, 333});
  inst.monitor->SetZoneMapEnabled(false);
  const auto dirtied_ref = RunQuery(inst.monitor.get(), sql, "p3");
  inst.monitor->SetZoneMapEnabled(true);

  inst.monitor->SetParallelism(&pool, 4, /*morsel_rows=*/16);
  const auto parallel = RunQuery(inst.monitor.get(), sql, "p3");
  EXPECT_EQ(parallel.first, dirtied_ref.first);
  EXPECT_EQ(parallel.second, dirtied_ref.second);
  inst.monitor->SetParallelism(nullptr, 1);

  // Concurrent statements: each thread scans serially, racing EnsureCurrent
  // on a freshly dirtied map.
  sensed->UpdateColumnWhere(pcol, sensed->row(1)[pcol], {90, 91});
  inst.monitor->SetZoneMapEnabled(false);
  const auto final_ref = RunQuery(inst.monitor.get(), sql, "p3");
  inst.monitor->SetZoneMapEnabled(true);
  std::vector<std::string> outs(4);
  {
    std::vector<std::thread> threads;
    for (size_t i = 0; i < outs.size(); ++i) {
      threads.emplace_back([&, i] {
        auto rs = inst.monitor->ExecuteQuery(sql, "p3");
        outs[i] = rs.ok() ? RenderRows(*rs) : "<error>";
      });
    }
    for (auto& th : threads) th.join();
  }
  for (const auto& out : outs) EXPECT_EQ(out, final_ref.first);
  (void)reference;
}

}  // namespace
}  // namespace aapac
