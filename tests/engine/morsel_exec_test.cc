// The morsel-parallel Execute overload must be byte-identical to the serial
// path for every query shape — scans, filtered scans, hash joins (parallel
// probe), nested-loop joins, aggregates, DISTINCT, ORDER BY, LIMIT and
// sub-queries — and must surface the same first error serial execution
// would hit, regardless of which morsel raced ahead.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "engine/database.h"
#include "engine/exec.h"
#include "engine/table.h"
#include "sql/parser.h"
#include "util/task_pool.h"

namespace aapac::engine {
namespace {

/// A two-table dataset large enough that every scan splits into many
/// morsels: big(id, grp, num, label) with kBigRows rows and dim(grp, name)
/// with one row per distinct grp.
constexpr size_t kBigRows = 5000;
constexpr int64_t kGroups = 23;

std::unique_ptr<Database> MakeWideDb() {
  auto db = std::make_unique<Database>();
  {
    Schema s;
    EXPECT_TRUE(s.AddColumn({"id", ValueType::kInt64}).ok());
    EXPECT_TRUE(s.AddColumn({"grp", ValueType::kInt64}).ok());
    EXPECT_TRUE(s.AddColumn({"num", ValueType::kDouble}).ok());
    EXPECT_TRUE(s.AddColumn({"label", ValueType::kString}).ok());
    Table* t = *db->CreateTable("big", s);
    t->Reserve(kBigRows);
    for (size_t i = 0; i < kBigRows; ++i) {
      const int64_t id = static_cast<int64_t>(i);
      t->InsertUnchecked({Value::Int(id), Value::Int(id % kGroups),
                          Value::Double(static_cast<double>(id % 97) / 7.0),
                          (id % 11 == 0)
                              ? Value::Null()
                              : Value::String("row" + std::to_string(id % 50))});
    }
  }
  {
    Schema s;
    EXPECT_TRUE(s.AddColumn({"grp", ValueType::kInt64}).ok());
    EXPECT_TRUE(s.AddColumn({"name", ValueType::kString}).ok());
    Table* t = *db->CreateTable("dim", s);
    for (int64_t g = 0; g < kGroups; ++g) {
      t->InsertUnchecked(
          {Value::Int(g), Value::String("group" + std::to_string(g))});
    }
  }
  return db;
}

class MorselExecTest : public ::testing::Test {
 protected:
  MorselExecTest() : db_(MakeWideDb()), pool_(3), exec_(db_.get()) {
    spec_.pool = &pool_;
    spec_.max_threads = 4;
    spec_.morsel_rows = 128;
  }

  void ExpectParallelEqualsSerial(const std::string& sql) {
    auto stmt = sql::ParseSelect(sql);
    ASSERT_TRUE(stmt.ok()) << sql;
    auto serial = exec_.Execute(**stmt);
    ASSERT_TRUE(serial.ok()) << sql << ": " << serial.status();
    auto parallel = exec_.Execute(**stmt, spec_);
    ASSERT_TRUE(parallel.ok()) << sql << ": " << parallel.status();
    ASSERT_EQ(parallel->column_names, serial->column_names) << sql;
    ASSERT_EQ(parallel->rows.size(), serial->rows.size()) << sql;
    for (size_t r = 0; r < serial->rows.size(); ++r) {
      ASSERT_EQ(parallel->rows[r].size(), serial->rows[r].size()) << sql;
      for (size_t c = 0; c < serial->rows[r].size(); ++c) {
        const Value& sv = serial->rows[r][c];
        const Value& pv = parallel->rows[r][c];
        ASSERT_TRUE((sv.is_null() && pv.is_null()) ||
                    (!sv.is_null() && !pv.is_null() && sv == pv))
            << sql << "\n  divergence at row " << r << " col " << c;
      }
    }
  }

  std::unique_ptr<Database> db_;
  util::TaskPool pool_;
  Executor exec_;
  ParallelSpec spec_;
};

TEST_F(MorselExecTest, FullScanIsByteIdentical) {
  ExpectParallelEqualsSerial("select id, grp, num, label from big");
}

TEST_F(MorselExecTest, FilteredScanIsByteIdentical) {
  ExpectParallelEqualsSerial(
      "select id, label from big where num > 5.0 and not label like 'row1%'");
}

TEST_F(MorselExecTest, HashJoinProbeIsByteIdentical) {
  ExpectParallelEqualsSerial(
      "select big.id, dim.name from big join dim on big.grp=dim.grp "
      "where big.num > 3.5");
}

TEST_F(MorselExecTest, NestedLoopJoinIsByteIdentical) {
  // Non-equi ON prevents the hash path; probe-side morsels still stitch in
  // order.
  ExpectParallelEqualsSerial(
      "select big.id, dim.name from big join dim on big.grp > dim.grp "
      "where big.id < 200");
}

TEST_F(MorselExecTest, AggregationOverStitchedRowsIsByteIdentical) {
  ExpectParallelEqualsSerial(
      "select grp, count(id), avg(num), min(label) from big "
      "group by grp having count(id) > 10");
}

TEST_F(MorselExecTest, DistinctIsByteIdentical) {
  ExpectParallelEqualsSerial("select distinct label, grp from big");
}

TEST_F(MorselExecTest, OrderByLimitIsByteIdentical) {
  ExpectParallelEqualsSerial(
      "select id, num from big where grp = 7 order by num, id limit 40");
}

TEST_F(MorselExecTest, FromSubqueryIsByteIdentical) {
  ExpectParallelEqualsSerial(
      "select s.grp, sum(s.num) from "
      "(select grp, num from big where id > 100) s group by s.grp");
}

TEST_F(MorselExecTest, InSubqueryIsByteIdentical) {
  ExpectParallelEqualsSerial(
      "select id from big where grp in (select grp from dim where "
      "name like 'group1%') and num > 8.0");
}

TEST_F(MorselExecTest, SerialErrorAndParallelErrorAgree) {
  // The WHERE predicate divides by zero at id = 500, 1500, 2500, 3500 and
  // 4500 — five failing rows spread over distinct morsels. Serial execution
  // stops at the first (id = 500); the parallel driver must surface the
  // lowest-morsel error even when later failing morsels finish first.
  const std::string sql =
      "select id from big where 100 / ((id % 1000) - 500) > -1000";
  auto stmt = sql::ParseSelect(sql);
  ASSERT_TRUE(stmt.ok());
  auto serial = exec_.Execute(**stmt);
  ASSERT_FALSE(serial.ok());
  auto parallel = exec_.Execute(**stmt, spec_);
  ASSERT_FALSE(parallel.ok());
  EXPECT_EQ(parallel.status().code(), serial.status().code());
  EXPECT_EQ(parallel.status().message(), serial.status().message());
}

TEST_F(MorselExecTest, DisabledSpecFallsBackToSerialPath) {
  ParallelSpec off;  // No pool: must behave exactly like Execute(stmt).
  auto stmt = sql::ParseSelect("select count(id) from big");
  ASSERT_TRUE(stmt.ok());
  auto a = exec_.Execute(**stmt);
  auto b = exec_.Execute(**stmt, off);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->rows[0][0].AsInt(), b->rows[0][0].AsInt());
}

}  // namespace
}  // namespace aapac::engine
