// Policy-mask interning: the dictionary's global-unique-id contract, the
// data-only equality of interned bytes Values, and the Table write paths
// that must funnel the policy column through the dictionary.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/policy_dict.h"
#include "engine/schema.h"
#include "engine/table.h"
#include "engine/value.h"

namespace aapac::engine {
namespace {

TEST(PolicyDictTest, SameBytesSameIdDistinctBytesDistinctIds) {
  PolicyDictionary dict;
  const Value a1 = dict.Intern("mask-a");
  const Value a2 = dict.Intern("mask-a");
  const Value b = dict.Intern("mask-b");
  ASSERT_NE(a1.bytes_interned_id(), 0u);
  EXPECT_EQ(a1.bytes_interned_id(), a2.bytes_interned_id());
  EXPECT_NE(a1.bytes_interned_id(), b.bytes_interned_id());
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.distinct_bytes(), std::string("mask-a").size() +
                                       std::string("mask-b").size());
}

TEST(PolicyDictTest, IdsAreGloballyUniqueAcrossDictionaries) {
  // Two dictionaries interning the same bytes must NOT share an id: a
  // verdict table indexed by id would otherwise conflate two tables'
  // policies. (Both ids still denote the same byte string — the invariant
  // is one id -> one blob, not one blob -> one id.)
  PolicyDictionary d1;
  PolicyDictionary d2;
  const Value v1 = d1.Intern("same-bytes");
  const Value v2 = d2.Intern("same-bytes");
  EXPECT_NE(v1.bytes_interned_id(), v2.bytes_interned_id());
  EXPECT_TRUE(v1.Equals(v2));
}

TEST(PolicyDictTest, IdCeilingBoundsEveryIssuedId) {
  PolicyDictionary dict;
  const Value v = dict.Intern("bounded");
  EXPECT_LT(v.bytes_interned_id(), PolicyDictionary::IdCeiling());
}

TEST(PolicyDictTest, InternedAndPlainBytesCompareEqual) {
  PolicyDictionary dict;
  const Value interned = dict.Intern("payload");
  const Value plain = Value::Bytes("payload");
  EXPECT_EQ(plain.bytes_interned_id(), 0u);
  // Equality is data-only in both directions; the id is a cache key, not
  // part of the value.
  EXPECT_TRUE(interned.Equals(plain));
  EXPECT_TRUE(plain.Equals(interned));
  EXPECT_EQ(interned.Compare(plain), 0);
  EXPECT_FALSE(interned.Equals(Value::Bytes("other")));
}

TEST(PolicyDictTest, NonBytesValuesPassThroughInternInPlace) {
  PolicyDictionary dict;
  Value v = Value::Int(7);
  dict.InternInPlace(&v);
  EXPECT_EQ(v.AsInt(), 7);
  EXPECT_EQ(dict.size(), 0u);
}

Table MakeTable() {
  Schema schema;
  EXPECT_TRUE(schema.AddColumn(Column{"id", ValueType::kInt64}).ok());
  EXPECT_TRUE(schema.AddColumn(Column{"policy", ValueType::kBytes}).ok());
  return Table("t", std::move(schema));
}

TEST(PolicyDictTest, SetInternColumnReinternsExistingRows) {
  Table t = MakeTable();
  ASSERT_TRUE(t.Insert({Value::Int(1), Value::Bytes("m1")}).ok());
  ASSERT_TRUE(t.Insert({Value::Int(2), Value::Bytes("m1")}).ok());
  ASSERT_TRUE(t.Insert({Value::Int(3), Value::Bytes("m2")}).ok());
  ASSERT_EQ(t.policy_dict(), nullptr);

  t.SetInternColumn(1);
  ASSERT_NE(t.policy_dict(), nullptr);
  EXPECT_EQ(t.policy_dict()->size(), 2u);
  EXPECT_NE(t.row(0)[1].bytes_interned_id(), 0u);
  EXPECT_EQ(t.row(0)[1].bytes_interned_id(), t.row(1)[1].bytes_interned_id());
  EXPECT_NE(t.row(0)[1].bytes_interned_id(), t.row(2)[1].bytes_interned_id());
}

TEST(PolicyDictTest, InsertAndUpdatePathsIntern) {
  Table t = MakeTable();
  t.SetInternColumn(1);

  ASSERT_TRUE(t.Insert({Value::Int(1), Value::Bytes("m1")}).ok());
  t.InsertUnchecked({Value::Int(2), Value::Bytes("m2")});
  EXPECT_NE(t.row(0)[1].bytes_interned_id(), 0u);
  EXPECT_NE(t.row(1)[1].bytes_interned_id(), 0u);
  EXPECT_NE(t.row(0)[1].bytes_interned_id(), t.row(1)[1].bytes_interned_id());

  // UpdateColumnWhere interns the new value once and fans the id out.
  const size_t updated =
      t.UpdateColumnWhere(1, Value::Bytes("m3"), {0, 1});
  EXPECT_EQ(updated, 2u);
  EXPECT_NE(t.row(0)[1].bytes_interned_id(), 0u);
  EXPECT_EQ(t.row(0)[1].bytes_interned_id(), t.row(1)[1].bytes_interned_id());
  EXPECT_EQ(t.row(0)[1].AsBytes(), "m3");
  EXPECT_EQ(t.policy_dict()->size(), 3u);

  // NULL policies are representable and never interned.
  ASSERT_TRUE(t.Insert({Value::Int(3), Value::Null()}).ok());
  EXPECT_TRUE(t.row(2)[1].is_null());
}

}  // namespace
}  // namespace aapac::engine
