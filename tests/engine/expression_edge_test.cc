// Expression evaluator corner cases: coercions, three-valued logic edges,
// LIKE specials, heterogeneous IN lists, ORDER BY stability.

#include <gtest/gtest.h>

#include "tests/engine/test_db.h"

namespace aapac::engine {
namespace {

class ExpressionEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override { db_ = MakeTestDb(); }
  std::unique_ptr<Database> db_;
};

TEST_F(ExpressionEdgeTest, IntDoubleComparisonCoercion) {
  // qty is INT64, price DOUBLE; cross-type comparisons coerce numerically.
  EXPECT_EQ(ExecSorted(db_.get(), "select id from items where qty > price"),
            (std::vector<std::string>{"1", "2", "4"}));
  EXPECT_EQ(
      ExecSorted(db_.get(), "select id from items where qty = 10.0"),
      (std::vector<std::string>{"1", "5"}));
}

TEST_F(ExpressionEdgeTest, BooleanEqualityAndOrdering) {
  EXPECT_EQ(ExecSorted(db_.get(), "select id from items where active = true"),
            (std::vector<std::string>{"1", "2", "5"}));
  EXPECT_EQ(
      ExecSorted(db_.get(), "select id from items where active <> false"),
      (std::vector<std::string>{"1", "2", "5"}));
  ResultSet rs = Exec(db_.get(), "select active from items order by active");
  EXPECT_TRUE(rs.rows[0][0].is_null());             // NULLs first.
  EXPECT_FALSE(rs.rows[1][0].AsBool());             // false < true.
}

TEST_F(ExpressionEdgeTest, StringBetween) {
  EXPECT_EQ(ExecSorted(db_.get(),
                       "select id from items where name between 'a' and 'b'"),
            (std::vector<std::string>{"1", "5"}));
}

TEST_F(ExpressionEdgeTest, LikeWildcardEdgeCases) {
  EXPECT_EQ(ExecSorted(db_.get(), "select id from items where name like '%'"),
            (std::vector<std::string>{"1", "2", "3", "5"}));  // NULL drops.
  EXPECT_EQ(
      ExecSorted(db_.get(), "select id from items where name like '_pple'"),
      (std::vector<std::string>{"1", "5"}));
  EXPECT_EQ(
      ExecSorted(db_.get(), "select id from items where name like '%rr%'"),
      (std::vector<std::string>{"3"}));
  EXPECT_TRUE(
      ExecSorted(db_.get(), "select id from items where name like ''").empty());
}

TEST_F(ExpressionEdgeTest, MixedNumericInList) {
  EXPECT_EQ(
      ExecSorted(db_.get(), "select id from items where price in (1.5, 2)"),
      (std::vector<std::string>{"1", "4"}));
  EXPECT_EQ(
      ExecSorted(db_.get(), "select id from items where qty in (10.0, 5.0)"),
      (std::vector<std::string>{"1", "4", "5"}));
}

TEST_F(ExpressionEdgeTest, CoalesceInPredicates) {
  // COALESCE turns NULL qty into 0, making the comparison decidable.
  EXPECT_EQ(
      ExecSorted(db_.get(),
                 "select id from items where coalesce(qty, 0) >= 0"),
      (std::vector<std::string>{"1", "2", "3", "4", "5"}));
  EXPECT_EQ(
      ExecSorted(db_.get(),
                 "select id from items where coalesce(qty, 0) = 0"),
      (std::vector<std::string>{"3"}));
}

TEST_F(ExpressionEdgeTest, NotOverNullComparison) {
  // NOT (NULL > 5) is NULL -> filtered.
  EXPECT_EQ(ExecSorted(db_.get(), "select id from items where not (qty > 5)"),
            (std::vector<std::string>{"4"}));
}

TEST_F(ExpressionEdgeTest, NestedFunctionCalls) {
  ResultSet rs = Exec(db_.get(),
                      "select upper(lower(upper(name))), "
                      "abs(abs(-5) - 10) from items where id = 1");
  EXPECT_EQ(rs.rows[0][0].AsString(), "APPLE");
  EXPECT_EQ(rs.rows[0][1].AsInt(), 5);
}

TEST_F(ExpressionEdgeTest, ArithmeticPrecedenceAndParens) {
  ResultSet rs = Exec(db_.get(),
                      "select 2 + 3 * 4, (2 + 3) * 4, 10 - 4 - 3, "
                      "-(2 + 3), 7 % 4 % 2 from items where id = 1");
  EXPECT_EQ(rs.rows[0][0].AsInt(), 14);
  EXPECT_EQ(rs.rows[0][1].AsInt(), 20);
  EXPECT_EQ(rs.rows[0][2].AsInt(), 3);   // Left-assoc.
  EXPECT_EQ(rs.rows[0][3].AsInt(), -5);
  EXPECT_EQ(rs.rows[0][4].AsInt(), 1);
}

TEST_F(ExpressionEdgeTest, OrderByIsStable) {
  // Two rows tie on name 'apple'; stable sort keeps insertion order.
  ResultSet rs = Exec(db_.get(),
                      "select id, name from items where name like 'apple' "
                      "order by name");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][0].AsInt(), 1);
  EXPECT_EQ(rs.rows[1][0].AsInt(), 5);
}

TEST_F(ExpressionEdgeTest, OrderByThenLimitTakesTop) {
  ResultSet rs =
      Exec(db_.get(), "select id from items order by id desc limit 2");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][0].AsInt(), 5);
  EXPECT_EQ(rs.rows[1][0].AsInt(), 4);
}

TEST_F(ExpressionEdgeTest, DistinctOnExpressions) {
  ResultSet rs = Exec(db_.get(),
                      "select distinct qty / 10 from items "
                      "where qty is not null");
  EXPECT_EQ(rs.rows.size(), 3u);  // 1, 2, 0.
}

TEST_F(ExpressionEdgeTest, BytesEqualityInWhere) {
  Schema schema;
  ASSERT_TRUE(schema.AddColumn({"tag", ValueType::kBytes}).ok());
  Table* t = *db_->CreateTable("blobs", schema);
  ASSERT_TRUE(t->Insert({Value::Bytes(std::string("\x01\x02", 2))}).ok());
  ASSERT_TRUE(t->Insert({Value::Bytes(std::string("\x01\x03", 2))}).ok());
  // b'...' literals produce BitString wire bytes; compare via a UDF-free
  // roundtrip: count distinct tags instead.
  ResultSet rs = Exec(db_.get(), "select count(distinct tag) from blobs");
  EXPECT_EQ(rs.rows[0][0].AsInt(), 2);
}

TEST_F(ExpressionEdgeTest, WhereOnBooleanColumnDirectly) {
  // A bare boolean column is a valid predicate.
  EXPECT_EQ(ExecSorted(db_.get(), "select id from items where active"),
            (std::vector<std::string>{"1", "2", "5"}));
}

TEST_F(ExpressionEdgeTest, NonBooleanWhereIsNotTrue) {
  // A non-boolean WHERE result never passes (engine treats only TRUE as
  // pass); integers are not implicitly truthy.
  EXPECT_TRUE(ExecSorted(db_.get(), "select id from items where qty").empty());
}

}  // namespace
}  // namespace aapac::engine
