// Algebraic-equivalence property tests: the executor must return identical
// result multisets for queries that differ only in commutations or
// rewritings SQL semantics guarantee to be equivalent. Random data keeps
// the comparisons honest across seeds.

#include <gtest/gtest.h>

#include <memory>

#include "tests/engine/test_db.h"
#include "util/rng.h"

namespace aapac::engine {
namespace {

/// A randomized two-table database exercising NULLs and duplicates.
std::unique_ptr<Database> MakeRandomDb(uint64_t seed) {
  Rng rng(seed);
  auto db = std::make_unique<Database>();
  {
    Schema s;
    EXPECT_TRUE(s.AddColumn({"k", ValueType::kInt64}).ok());
    EXPECT_TRUE(s.AddColumn({"v", ValueType::kInt64}).ok());
    EXPECT_TRUE(s.AddColumn({"tag", ValueType::kString}).ok());
    Table* t = *db->CreateTable("lhs", s);
    for (int i = 0; i < 60; ++i) {
      t->InsertUnchecked(
          {rng.NextBool(0.1) ? Value::Null() : Value::Int(rng.NextInt(0, 9)),
           rng.NextBool(0.1) ? Value::Null() : Value::Int(rng.NextInt(0, 50)),
           Value::String(std::string(1, static_cast<char>(
                                            'a' + rng.NextInt(0, 3))))});
    }
  }
  {
    Schema s;
    EXPECT_TRUE(s.AddColumn({"k", ValueType::kInt64}).ok());
    EXPECT_TRUE(s.AddColumn({"w", ValueType::kDouble}).ok());
    Table* t = *db->CreateTable("rhs", s);
    for (int i = 0; i < 40; ++i) {
      t->InsertUnchecked(
          {rng.NextBool(0.1) ? Value::Null() : Value::Int(rng.NextInt(0, 9)),
           Value::Double(rng.NextDouble() * 10)});
    }
  }
  return db;
}

class EquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EquivalenceTest, ConjunctOrderIrrelevant) {
  auto db = MakeRandomDb(GetParam());
  EXPECT_EQ(ExecSorted(db.get(),
                       "select k, v from lhs where k > 2 and v < 30"),
            ExecSorted(db.get(),
                       "select k, v from lhs where v < 30 and k > 2"));
}

TEST_P(EquivalenceTest, JoinSidesCommute) {
  auto db = MakeRandomDb(GetParam());
  EXPECT_EQ(ExecSorted(db.get(),
                       "select lhs.k, v, w from lhs join rhs on "
                       "lhs.k = rhs.k"),
            ExecSorted(db.get(),
                       "select lhs.k, v, w from rhs join lhs on "
                       "rhs.k = lhs.k"));
}

TEST_P(EquivalenceTest, ExplicitJoinEqualsCommaJoinWithWhere) {
  auto db = MakeRandomDb(GetParam());
  EXPECT_EQ(ExecSorted(db.get(),
                       "select v, w from lhs join rhs on lhs.k = rhs.k "
                       "where v > 10"),
            ExecSorted(db.get(),
                       "select v, w from lhs, rhs where lhs.k = rhs.k "
                       "and v > 10"));
}

TEST_P(EquivalenceTest, InListEqualsOrChain) {
  auto db = MakeRandomDb(GetParam());
  EXPECT_EQ(ExecSorted(db.get(), "select v from lhs where k in (1, 3, 5)"),
            ExecSorted(db.get(),
                       "select v from lhs where k = 1 or k = 3 or k = 5"));
}

TEST_P(EquivalenceTest, BetweenEqualsRangePair) {
  auto db = MakeRandomDb(GetParam());
  EXPECT_EQ(ExecSorted(db.get(), "select v from lhs where v between 10 and 30"),
            ExecSorted(db.get(),
                       "select v from lhs where v >= 10 and v <= 30"));
}

TEST_P(EquivalenceTest, DeMorgan) {
  auto db = MakeRandomDb(GetParam());
  EXPECT_EQ(
      ExecSorted(db.get(),
                 "select v from lhs where not (k > 3 or v > 20)"),
      ExecSorted(db.get(),
                 "select v from lhs where not k > 3 and not v > 20"));
}

TEST_P(EquivalenceTest, DistinctEqualsGroupBy) {
  auto db = MakeRandomDb(GetParam());
  EXPECT_EQ(ExecSorted(db.get(), "select distinct tag from lhs"),
            ExecSorted(db.get(), "select tag from lhs group by tag"));
}

TEST_P(EquivalenceTest, InSubqueryEqualsJoinOnDistinctKeys) {
  auto db = MakeRandomDb(GetParam());
  EXPECT_EQ(
      ExecSorted(db.get(),
                 "select k, v from lhs where k in (select k from rhs)"),
      ExecSorted(db.get(),
                 "select lhs.k, v from lhs join (select distinct k from "
                 "rhs) d on lhs.k = d.k"));
}

TEST_P(EquivalenceTest, DerivedTableEqualsInlineFilter) {
  auto db = MakeRandomDb(GetParam());
  EXPECT_EQ(ExecSorted(db.get(),
                       "select s.v from (select v from lhs where v > 25) s"),
            ExecSorted(db.get(), "select v from lhs where v > 25"));
}

TEST_P(EquivalenceTest, CountStarEqualsSumOfGroupCounts) {
  auto db = MakeRandomDb(GetParam());
  ResultSet total = Exec(db.get(), "select count(*) from lhs");
  ResultSet grouped = Exec(db.get(),
                           "select sum(c) from (select tag, count(*) as c "
                           "from lhs group by tag) g");
  EXPECT_EQ(total.rows[0][0].AsInt(), grouped.rows[0][0].AsInt());
}

TEST_P(EquivalenceTest, HavingEqualsPostFilterOnDerived) {
  auto db = MakeRandomDb(GetParam());
  EXPECT_EQ(
      ExecSorted(db.get(),
                 "select tag, count(*) from lhs group by tag "
                 "having count(*) > 10"),
      ExecSorted(db.get(),
                 "select tag, c from (select tag, count(*) as c from lhs "
                 "group by tag) g where c > 10"));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceTest,
                         ::testing::Values(1, 2, 3, 4, 5, 10, 99, 1234));

}  // namespace
}  // namespace aapac::engine
