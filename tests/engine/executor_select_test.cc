// Row-at-a-time SELECT behaviour: projection, WHERE with three-valued
// logic, expressions, DISTINCT, ORDER BY, LIMIT and error reporting.

#include <gtest/gtest.h>

#include "tests/engine/test_db.h"

namespace aapac::engine {
namespace {

class SelectTest : public ::testing::Test {
 protected:
  void SetUp() override { db_ = MakeTestDb(); }
  std::unique_ptr<Database> db_;
};

TEST_F(SelectTest, ProjectsColumns) {
  auto rows = ExecSorted(db_.get(), "select id, name from items");
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0], "1|apple");
  EXPECT_EQ(rows[3], "4|NULL");
}

TEST_F(SelectTest, StarExpandsAllColumns) {
  ResultSet rs = Exec(db_.get(), "select * from items");
  EXPECT_EQ(rs.column_names,
            (std::vector<std::string>{"id", "name", "price", "qty", "active"}));
  EXPECT_EQ(rs.rows.size(), 5u);
}

TEST_F(SelectTest, QualifiedStar) {
  ResultSet rs = Exec(db_.get(),
                      "select o.* from orders o join items i on "
                      "o.item_id = i.id");
  EXPECT_EQ(rs.column_names,
            (std::vector<std::string>{"order_id", "item_id", "amount"}));
  EXPECT_EQ(rs.rows.size(), 4u);  // Order 104 dangles.
}

TEST_F(SelectTest, ColumnAliasNamesOutput) {
  ResultSet rs = Exec(db_.get(), "select id as key, qty q from items");
  EXPECT_EQ(rs.column_names, (std::vector<std::string>{"key", "q"}));
}

TEST_F(SelectTest, WhereComparisons) {
  EXPECT_EQ(ExecSorted(db_.get(), "select id from items where price > 1.4"),
            (std::vector<std::string>{"1", "3", "4"}));
  EXPECT_EQ(ExecSorted(db_.get(), "select id from items where qty = 10"),
            (std::vector<std::string>{"1", "5"}));
  EXPECT_EQ(ExecSorted(db_.get(), "select id from items where id <> 1").size(),
            4u);
  EXPECT_EQ(
      ExecSorted(db_.get(), "select id from items where price <= 1.5"),
      (std::vector<std::string>{"1", "2"}));
}

TEST_F(SelectTest, NullComparisonsFilterOut) {
  // price NULL (id 5) and qty NULL (id 3) never satisfy comparisons.
  EXPECT_EQ(ExecSorted(db_.get(), "select id from items where price > 0"),
            (std::vector<std::string>{"1", "2", "3", "4"}));
  EXPECT_EQ(ExecSorted(db_.get(), "select id from items where qty > 0"),
            (std::vector<std::string>{"1", "2", "4", "5"}));
}

TEST_F(SelectTest, ThreeValuedLogic) {
  // NULL OR true = true; NULL AND false = false — rows stay/go accordingly.
  EXPECT_EQ(
      ExecSorted(db_.get(),
                 "select id from items where active or price > 100"),
      (std::vector<std::string>{"1", "2", "5"}));
  EXPECT_EQ(ExecSorted(db_.get(),
                       "select id from items where active and qty > 0"),
            (std::vector<std::string>{"1", "2", "5"}));
  // NOT NULL is NULL: row 4 (active NULL) never passes `not active`.
  EXPECT_EQ(ExecSorted(db_.get(), "select id from items where not active"),
            (std::vector<std::string>{"3"}));
}

TEST_F(SelectTest, IsNullPredicates) {
  EXPECT_EQ(ExecSorted(db_.get(), "select id from items where name is null"),
            (std::vector<std::string>{"4"}));
  EXPECT_EQ(
      ExecSorted(db_.get(), "select id from items where price is not null"),
      (std::vector<std::string>{"1", "2", "3", "4"}));
}

TEST_F(SelectTest, LikePredicates) {
  EXPECT_EQ(ExecSorted(db_.get(), "select id from items where name like 'a%'"),
            (std::vector<std::string>{"1", "5"}));
  // NULL name yields NULL, filtered out of NOT LIKE too.
  EXPECT_EQ(
      ExecSorted(db_.get(), "select id from items where name not like 'a%'"),
      (std::vector<std::string>{"2", "3"}));
}

TEST_F(SelectTest, InList) {
  EXPECT_EQ(ExecSorted(db_.get(), "select id from items where id in (1, 3, 9)"),
            (std::vector<std::string>{"1", "3"}));
  EXPECT_EQ(
      ExecSorted(db_.get(), "select id from items where id not in (1, 2, 3)"),
      (std::vector<std::string>{"4", "5"}));
  // x IN (..., NULL) is NULL when unmatched: row filtered.
  EXPECT_EQ(
      ExecSorted(db_.get(), "select id from items where id in (1, null)"),
      (std::vector<std::string>{"1"}));
  EXPECT_TRUE(
      ExecSorted(db_.get(), "select id from items where id not in (1, null)")
          .empty());
}

TEST_F(SelectTest, Between) {
  EXPECT_EQ(ExecSorted(db_.get(), "select id from items where id between 2 and 4"),
            (std::vector<std::string>{"2", "3", "4"}));
  EXPECT_EQ(
      ExecSorted(db_.get(), "select id from items where id not between 2 and 4"),
      (std::vector<std::string>{"1", "5"}));
}

TEST_F(SelectTest, ArithmeticExpressions) {
  ResultSet rs = Exec(db_.get(),
                      "select id, price * qty, qty + 1, qty - 1, qty / 3, "
                      "qty % 3 from items where id = 2");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][1].AsDouble(), 10.0);
  EXPECT_EQ(rs.rows[0][2].AsInt(), 21);
  EXPECT_EQ(rs.rows[0][3].AsInt(), 19);
  EXPECT_EQ(rs.rows[0][4].AsInt(), 6);  // Integer division.
  EXPECT_EQ(rs.rows[0][5].AsInt(), 2);
}

TEST_F(SelectTest, NullPropagatesThroughArithmetic) {
  ResultSet rs = Exec(db_.get(), "select price + 1 from items where id = 5");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_TRUE(rs.rows[0][0].is_null());
}

TEST_F(SelectTest, DivisionByZeroIsError) {
  ExpectExecError(db_.get(), "select qty / 0 from items",
                  StatusCode::kExecutionError);
  ExpectExecError(db_.get(), "select qty % 0 from items",
                  StatusCode::kExecutionError);
}

TEST_F(SelectTest, UnaryMinus) {
  ResultSet rs = Exec(db_.get(), "select -qty, -price from items where id=1");
  EXPECT_EQ(rs.rows[0][0].AsInt(), -10);
  EXPECT_EQ(rs.rows[0][1].AsDouble(), -1.5);
}

TEST_F(SelectTest, Distinct) {
  EXPECT_EQ(ExecSorted(db_.get(), "select distinct name from items"),
            (std::vector<std::string>{"NULL", "apple", "banana", "cherry"}));
  EXPECT_EQ(ExecSorted(db_.get(), "select distinct qty from items"),
            (std::vector<std::string>{"10", "20", "5", "NULL"}));
}

TEST_F(SelectTest, OrderByColumnAscDesc) {
  ResultSet rs = Exec(db_.get(), "select id from items order by id desc");
  ASSERT_EQ(rs.rows.size(), 5u);
  EXPECT_EQ(rs.rows[0][0].AsInt(), 5);
  EXPECT_EQ(rs.rows[4][0].AsInt(), 1);
  rs = Exec(db_.get(), "select name from items order by name");
  EXPECT_TRUE(rs.rows[0][0].is_null());  // NULLs first.
  EXPECT_EQ(rs.rows[1][0].AsString(), "apple");
}

TEST_F(SelectTest, OrderByPosition) {
  ResultSet rs = Exec(db_.get(), "select id, qty from items order by 2 desc, 1");
  EXPECT_EQ(rs.rows[0][0].AsInt(), 2);  // qty 20 first.
}

TEST_F(SelectTest, OrderByAlias) {
  ResultSet rs = Exec(db_.get(), "select qty as quantity from items "
                                 "order by quantity desc");
  EXPECT_EQ(rs.rows[0][0].AsInt(), 20);
}

TEST_F(SelectTest, Limit) {
  EXPECT_EQ(Exec(db_.get(), "select id from items limit 2").rows.size(), 2u);
  EXPECT_EQ(Exec(db_.get(), "select id from items limit 0").rows.size(), 0u);
  EXPECT_EQ(Exec(db_.get(), "select id from items limit 100").rows.size(), 5u);
}

TEST_F(SelectTest, ScalarFunctions) {
  ResultSet rs =
      Exec(db_.get(),
           "select abs(-3), length(name), lower(upper(name)), "
           "coalesce(price, 0), round(price) from items where id = 1");
  EXPECT_EQ(rs.rows[0][0].AsInt(), 3);
  EXPECT_EQ(rs.rows[0][1].AsInt(), 5);
  EXPECT_EQ(rs.rows[0][2].AsString(), "apple");
  EXPECT_EQ(rs.rows[0][3].AsDouble(), 1.5);
  EXPECT_EQ(rs.rows[0][4].AsDouble(), 2.0);
}

TEST_F(SelectTest, BindErrors) {
  ExpectExecError(db_.get(), "select nope from items", StatusCode::kBindError);
  ExpectExecError(db_.get(), "select items.nope from items",
                  StatusCode::kBindError);
  ExpectExecError(db_.get(), "select x.id from items",
                  StatusCode::kBindError);
  ExpectExecError(db_.get(), "select unknown_fn(id) from items",
                  StatusCode::kBindError);
  ExpectExecError(db_.get(), "select abs(id, id) from items",
                  StatusCode::kBindError);
  ExpectExecError(db_.get(), "select id from missing_table",
                  StatusCode::kNotFound);
}

TEST_F(SelectTest, AmbiguousColumnIsError) {
  // Both items.id-like names: create a join where `amount` vs ... use
  // item_id ambiguity via self join.
  ExpectExecError(db_.get(),
                  "select order_id from orders a join orders b on "
                  "a.order_id = b.order_id",
                  StatusCode::kBindError);
}

TEST_F(SelectTest, SelfJoinWithAliasesWorks) {
  auto rows = ExecSorted(db_.get(),
                         "select a.order_id from orders a join orders b on "
                         "a.item_id = b.item_id where b.order_id = 100");
  EXPECT_EQ(rows, (std::vector<std::string>{"100", "101"}));
}

TEST_F(SelectTest, TypeMismatchComparisonIsError) {
  ExpectExecError(db_.get(), "select id from items where name > 3",
                  StatusCode::kExecutionError);
  ExpectExecError(db_.get(), "select id from items where name like 5",
                  StatusCode::kExecutionError);
  ExpectExecError(db_.get(), "select name + 1 from items",
                  StatusCode::kExecutionError);
}

TEST_F(SelectTest, StatsTrackScannedRows) {
  Executor exec(db_.get());
  ASSERT_TRUE(exec.ExecuteSql("select id from items where id = 1").ok());
  EXPECT_EQ(exec.stats().rows_scanned, 5u);
  EXPECT_EQ(exec.stats().rows_output, 1u);
}

}  // namespace
}  // namespace aapac::engine
