// Joins: hash equi-joins, residual conditions, non-equi nested loops,
// multi-way joins, NULL keys, cross joins, pushdown correctness.

#include <gtest/gtest.h>

#include "tests/engine/test_db.h"

namespace aapac::engine {
namespace {

class JoinTest : public ::testing::Test {
 protected:
  void SetUp() override { db_ = MakeTestDb(); }
  std::unique_ptr<Database> db_;
};

TEST_F(JoinTest, InnerEquiJoin) {
  auto rows = ExecSorted(db_.get(),
                         "select order_id, name from orders join items on "
                         "orders.item_id = items.id");
  EXPECT_EQ(rows, (std::vector<std::string>{"100|apple", "101|apple",
                                            "102|banana", "103|cherry"}));
}

TEST_F(JoinTest, JoinConditionReversedSidesWorks) {
  auto rows = ExecSorted(db_.get(),
                         "select order_id from orders join items on "
                         "items.id = orders.item_id");
  EXPECT_EQ(rows.size(), 4u);
}

TEST_F(JoinTest, DanglingRowsDropped) {
  // Order 104 references item 9 which does not exist; inner join drops it.
  auto rows = ExecSorted(db_.get(),
                         "select order_id from orders join items on "
                         "orders.item_id = items.id");
  EXPECT_EQ(std::count(rows.begin(), rows.end(), "104"), 0);
}

TEST_F(JoinTest, ResidualOnCondition) {
  auto rows = ExecSorted(db_.get(),
                         "select order_id from orders join items on "
                         "orders.item_id = items.id and amount > 2");
  EXPECT_EQ(rows, (std::vector<std::string>{"101", "103"}));
}

TEST_F(JoinTest, PureNonEquiJoinFallsBackToNestedLoop) {
  auto rows = ExecSorted(db_.get(),
                         "select order_id, id from orders join items on "
                         "orders.amount > items.qty");
  // amount > qty: qty values 10,20,NULL,5,10; amounts 2,3,1,4,1.
  // Only amount=4 > qty... none (min qty 5). Actually 4 < 5: empty.
  EXPECT_TRUE(rows.empty());
  rows = ExecSorted(db_.get(),
                    "select order_id, id from orders join items on "
                    "orders.amount < items.qty where items.id = 4");
  // qty of item 4 is 5; every order amount (2,3,1,4,1) is below it.
  EXPECT_EQ(rows, (std::vector<std::string>{"100|4", "101|4", "102|4",
                                            "103|4", "104|4"}));
}

TEST_F(JoinTest, ThreeWayJoin) {
  // orders -> items -> orders again via amount = amount (self-ish).
  auto rows = ExecSorted(
      db_.get(),
      "select a.order_id, items.name, b.order_id from orders a join items "
      "on a.item_id = items.id join orders b on a.order_id = b.order_id");
  EXPECT_EQ(rows.size(), 4u);
}

TEST_F(JoinTest, NullKeysNeverMatch) {
  // Add an item with NULL id and an order with NULL item_id.
  Table* items = db_->FindTable("items");
  ASSERT_TRUE(items
                  ->Insert({Value::Null(), Value::String("ghost"),
                            Value::Double(1.0), Value::Int(1),
                            Value::Bool(true)})
                  .ok());
  Table* orders = db_->FindTable("orders");
  ASSERT_TRUE(
      orders->Insert({Value::Int(105), Value::Null(), Value::Int(7)}).ok());
  auto rows = ExecSorted(db_.get(),
                         "select order_id from orders join items on "
                         "orders.item_id = items.id");
  EXPECT_EQ(rows.size(), 4u);  // Unchanged: NULL keys match nothing.
}

TEST_F(JoinTest, CommaCrossJoin) {
  ResultSet rs = Exec(db_.get(), "select items.id, orders.order_id from "
                                 "items, orders");
  EXPECT_EQ(rs.rows.size(), 25u);
}

TEST_F(JoinTest, CommaJoinWithWhereActsAsInnerJoin) {
  auto rows = ExecSorted(db_.get(),
                         "select order_id, name from items, orders where "
                         "orders.item_id = items.id");
  EXPECT_EQ(rows.size(), 4u);
}

TEST_F(JoinTest, PushdownDoesNotChangeResults) {
  // Single-table predicates pushed below the join must give the same rows
  // as filtering after (semantically).
  auto pushed = ExecSorted(db_.get(),
                           "select order_id, name from orders join items on "
                           "orders.item_id = items.id where "
                           "items.active and orders.amount >= 1");
  EXPECT_EQ(pushed, (std::vector<std::string>{"100|apple", "101|apple",
                                              "102|banana"}));
}

TEST_F(JoinTest, ScanStatsReflectPushdown) {
  Executor exec(db_.get());
  ASSERT_TRUE(exec.ExecuteSql("select order_id from orders join items on "
                              "orders.item_id = items.id where items.id = 1")
                  .ok());
  // Both tables fully scanned once.
  EXPECT_EQ(exec.stats().rows_scanned, 10u);
  // items filtered to 1 row at the scan; join output is 2 rows.
  EXPECT_EQ(exec.stats().rows_output, 2u);
}

TEST_F(JoinTest, AliasedJoins) {
  auto rows = ExecSorted(db_.get(),
                         "select o.order_id from orders o join items i on "
                         "o.item_id = i.id where i.name like 'app%'");
  EXPECT_EQ(rows, (std::vector<std::string>{"100", "101"}));
}

TEST_F(JoinTest, JoinOnExpressionKeysUsesResidual) {
  // Non-column-ref equality (expression on one side) still works via the
  // nested-loop/residual path.
  auto rows = ExecSorted(db_.get(),
                         "select order_id from orders join items on "
                         "orders.item_id = items.id + 0");
  EXPECT_EQ(rows.size(), 4u);
}

}  // namespace
}  // namespace aapac::engine
