#include "engine/value.h"

#include <gtest/gtest.h>

namespace aapac::engine {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
  EXPECT_EQ(v.ToString(), "NULL");
}

TEST(ValueTest, FactoriesAndAccessors) {
  EXPECT_EQ(Value::Int(5).AsInt(), 5);
  EXPECT_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_TRUE(Value::Bool(true).AsBool());
  EXPECT_EQ(Value::String("hi").AsString(), "hi");
  EXPECT_EQ(Value::Bytes(std::string("\x00\x01", 2)).AsBytes().size(), 2u);
  EXPECT_EQ(Value::Int(5).type(), ValueType::kInt64);
  EXPECT_EQ(Value::Bytes("").type(), ValueType::kBytes);
}

TEST(ValueTest, NumericHelpers) {
  EXPECT_TRUE(Value::Int(1).IsNumeric());
  EXPECT_TRUE(Value::Double(1).IsNumeric());
  EXPECT_FALSE(Value::String("1").IsNumeric());
  EXPECT_FALSE(Value::Null().IsNumeric());
  EXPECT_EQ(Value::Int(3).NumericAsDouble(), 3.0);
}

TEST(ValueTest, EqualsCoercesNumerics) {
  EXPECT_TRUE(Value::Int(3).Equals(Value::Double(3.0)));
  EXPECT_TRUE(Value::Double(3.0).Equals(Value::Int(3)));
  EXPECT_FALSE(Value::Int(3).Equals(Value::Double(3.5)));
  EXPECT_FALSE(Value::Int(3).Equals(Value::String("3")));
}

TEST(ValueTest, NullEqualsNothingViaEquals) {
  EXPECT_FALSE(Value::Null().Equals(Value::Null()));
  EXPECT_FALSE(Value::Null().Equals(Value::Int(0)));
  // operator== treats NULL == NULL structurally (container use).
  EXPECT_TRUE(Value::Null() == Value::Null());
}

TEST(ValueTest, CompareIsTotalOrder) {
  EXPECT_LT(Value::Null().Compare(Value::Int(0)), 0);  // NULLs first.
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
  EXPECT_LT(Value::Int(1).Compare(Value::Int(2)), 0);
  EXPECT_GT(Value::Int(2).Compare(Value::Int(1)), 0);
  EXPECT_EQ(Value::Int(2).Compare(Value::Double(2.0)), 0);
  EXPECT_LT(Value::Double(1.5).Compare(Value::Int(2)), 0);
  EXPECT_LT(Value::String("a").Compare(Value::String("b")), 0);
  EXPECT_LT(Value::Bool(false).Compare(Value::Bool(true)), 0);
  EXPECT_EQ(Value::Bytes("ab").Compare(Value::Bytes("ab")), 0);
}

TEST(ValueTest, HashConsistentWithEquals) {
  // Values that compare equal must hash equally (int/double coercion).
  EXPECT_EQ(Value::Int(7).Hash(), Value::Double(7.0).Hash());
  EXPECT_EQ(Value::String("abc").Hash(), Value::String("abc").Hash());
  // Strings and bytes of the same content hash differently.
  EXPECT_NE(Value::String("abc").Hash(), Value::Bytes("abc").Hash());
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::Int(-2).ToString(), "-2");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::String("x").ToString(), "x");
  EXPECT_EQ(Value::Bytes(std::string("\x0f\xa0", 2)).ToString(), "0x0fa0");
}

TEST(RowHashTest, EqualRowsHashEqually) {
  Row a = {Value::Int(1), Value::String("x"), Value::Null()};
  Row b = {Value::Double(1.0), Value::String("x"), Value::Null()};
  EXPECT_TRUE(RowEq{}(a, b));
  EXPECT_EQ(RowHash{}(a), RowHash{}(b));
  Row c = {Value::Int(2), Value::String("x"), Value::Null()};
  EXPECT_FALSE(RowEq{}(a, c));
}

TEST(RowHashTest, DifferentArityNeverEqual) {
  Row a = {Value::Int(1)};
  Row b = {Value::Int(1), Value::Int(2)};
  EXPECT_FALSE(RowEq{}(a, b));
}

}  // namespace
}  // namespace aapac::engine
