// Secondary-index access paths (engine/index.h + the executor's sargable
// conjunct detection): property tests asserting that an index probe is
// INVISIBLE next to the full scan — identical result rows (and, under
// enforcement, identical logical compliance-check counts) across randomized
// key distributions, NULL keys, duplicate keys, empty ranges, and both
// index kinds. The enforced comparison drives the whole patients workload
// through the monitor with index scans toggled per leg, exactly like the
// AAPAC_INDEX_OFF differential leg in CI.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "core/catalog.h"
#include "core/monitor.h"
#include "engine/database.h"
#include "engine/exec.h"
#include "engine/index.h"
#include "engine/table.h"
#include "engine/value.h"
#include "tests/engine/test_db.h"
#include "workload/patients.h"
#include "workload/policies.h"

namespace aapac {
namespace {

using engine::IndexKind;
using engine::Table;
using engine::Value;

// ---------------------------------------------------------------------------
// Unenforced row agreement over randomized key distributions.

/// Builds t(k BIGINT, tag TEXT) with `n` rows whose keys follow one of
/// three distributions, plus a sprinkle of NULL keys. Returns the db.
std::unique_ptr<engine::Database> BuildKeyed(uint64_t seed, size_t n,
                                             int distribution) {
  auto db = std::make_unique<engine::Database>();
  engine::Schema s;
  EXPECT_TRUE(s.AddColumn({"k", engine::ValueType::kInt64}).ok());
  EXPECT_TRUE(s.AddColumn({"tag", engine::ValueType::kString}).ok());
  Table* t = *db->CreateTable("t", s);
  std::mt19937_64 rng(seed);
  for (size_t i = 0; i < n; ++i) {
    Value key;
    if (rng() % 16 == 0) {
      key = Value::Null();  // NULL keys never match any point or range.
    } else {
      switch (distribution) {
        case 0:  // Uniform over a narrow domain → heavy duplication.
          key = Value::Int(static_cast<int64_t>(rng() % 17));
          break;
        case 1:  // Wide domain → mostly distinct keys.
          key = Value::Int(static_cast<int64_t>(rng() % 10000));
          break;
        default: {  // Skewed: quadratic pile-up on small keys.
          const uint64_t u = rng() % 100;
          key = Value::Int(static_cast<int64_t>((u * u) / 100));
          break;
        }
      }
    }
    EXPECT_TRUE(
        t->Insert({std::move(key),
                   Value::String("r" + std::to_string(i % 7))})
            .ok());
  }
  return db;
}

std::vector<std::string> RunRows(engine::Executor* exec,
                                 const std::string& sql) {
  auto rs = exec->ExecuteSql(sql);
  EXPECT_TRUE(rs.ok()) << sql << " -> " << rs.status();
  std::vector<std::string> out;
  if (!rs.ok()) return out;
  for (const auto& row : rs->rows) {
    std::string line;
    for (const auto& v : row) {
      line += v.is_null() ? "NULL" : v.ToString();
      line += '|';
    }
    out.push_back(std::move(line));
  }
  return out;
}

TEST(IndexScanTest, RandomizedDistributionsAgreeWithScan) {
  std::mt19937_64 qrng(20260808);
  for (int dist = 0; dist < 3; ++dist) {
    for (IndexKind kind : {IndexKind::kHash, IndexKind::kOrdered}) {
      auto db = BuildKeyed(/*seed=*/97 + dist, /*n=*/500, dist);
      Table* t = db->FindTable("t");
      ASSERT_TRUE(t->CreateIndex("ik", "k", kind).ok());
      engine::Executor exec(db.get());
      for (int q = 0; q < 40; ++q) {
        const int64_t a = static_cast<int64_t>(qrng() % 10000) - 50;
        const int64_t b = a + static_cast<int64_t>(qrng() % 40) - 10;
        std::string pred;
        switch (qrng() % 5) {
          case 0: pred = "k = " + std::to_string(a); break;
          case 1:
            // Deliberately allows b < a: the empty range must return
            // nothing on both paths.
            pred = "k between " + std::to_string(a) + " and " +
                   std::to_string(b);
            break;
          case 2: pred = "k < " + std::to_string(a); break;
          case 3: pred = "k >= " + std::to_string(a); break;
          default:
            // Literal-on-the-left spelling; the detector mirrors the
            // operator.
            pred = std::to_string(a) + " > k";
            break;
        }
        const std::string sql = "SELECT k, tag FROM t WHERE " + pred;
        exec.set_index_scans_enabled(true);
        const auto indexed = RunRows(&exec, sql);
        exec.set_index_scans_enabled(false);
        const auto scanned = RunRows(&exec, sql);
        exec.set_index_scans_enabled(true);
        ASSERT_EQ(indexed, scanned)
            << "dist=" << dist << " kind=" << engine::IndexKindName(kind)
            << " sql=" << sql;
      }
      // Ranges are only servable by the ordered kind; points by either. In
      // both cases at least some of the 40 statements must have probed.
      EXPECT_GT(exec.stats().index_probes.load(), 0u)
          << "dist=" << dist << " kind=" << engine::IndexKindName(kind)
          << ": no statement took the index path";
    }
  }
}

TEST(IndexScanTest, NullKeysNeverMatchAndDuplicatesAllSurface) {
  auto db = std::make_unique<engine::Database>();
  engine::Schema s;
  ASSERT_TRUE(s.AddColumn({"k", engine::ValueType::kInt64}).ok());
  ASSERT_TRUE(s.AddColumn({"seq", engine::ValueType::kInt64}).ok());
  Table* t = *db->CreateTable("t", s);
  // Ten duplicates of key 7 interleaved with NULLs and singletons.
  for (int64_t i = 0; i < 30; ++i) {
    Value key = (i % 3 == 0) ? Value::Null()
                             : (i % 3 == 1 ? Value::Int(7) : Value::Int(i));
    ASSERT_TRUE(t->Insert({std::move(key), Value::Int(i)}).ok());
  }
  ASSERT_TRUE(t->CreateIndex("ik", "k", IndexKind::kOrdered).ok());
  engine::Executor exec(db.get());

  for (const std::string pred :
       {std::string("k = 7"), std::string("k between 6 and 8"),
        std::string("k < 3"), std::string("k >= 28")}) {
    const std::string sql = "SELECT seq FROM t WHERE " + pred;
    exec.set_index_scans_enabled(true);
    const auto indexed = RunRows(&exec, sql);
    exec.set_index_scans_enabled(false);
    const auto scanned = RunRows(&exec, sql);
    exec.set_index_scans_enabled(true);
    ASSERT_EQ(indexed, scanned) << sql;
  }
  // The duplicate key surfaces every copy, in slot (insertion) order.
  const auto dups = RunRows(&exec, "SELECT seq FROM t WHERE k = 7");
  EXPECT_EQ(dups.size(), 10u);
  // NULL keys are absent from the index and fail every comparison: a probe
  // for any key must never return a NULL-keyed row.
  const auto nulls =
      RunRows(&exec, "SELECT seq FROM t WHERE k between -100 and 100");
  for (const auto& line : nulls) {
    EXPECT_EQ(line.find("NULL"), std::string::npos) << line;
  }
}

TEST(IndexScanTest, EmptyRangesAndMissingKeysReturnNothing) {
  auto db = BuildKeyed(/*seed=*/5, /*n=*/200, /*distribution=*/1);
  Table* t = db->FindTable("t");
  ASSERT_TRUE(t->CreateIndex("ik", "k", IndexKind::kOrdered).ok());
  engine::Executor exec(db.get());
  const uint64_t probes_before = exec.stats().index_probes.load();
  for (const std::string sql :
       {std::string("SELECT k FROM t WHERE k = -123456"),
        std::string("SELECT k FROM t WHERE k between 50 and 40"),
        std::string("SELECT k FROM t WHERE k < -999999"),
        std::string("SELECT k FROM t WHERE k >= 999999")}) {
    EXPECT_TRUE(RunRows(&exec, sql).empty()) << sql;
  }
  // All four statements were sargable: they probed and found nothing.
  EXPECT_EQ(exec.stats().index_probes.load(), probes_before + 4);
}

TEST(IndexScanTest, TypeMismatchedLiteralFallsBackToScan) {
  auto db = BuildKeyed(/*seed=*/6, /*n=*/50, /*distribution=*/1);
  Table* t = db->FindTable("t");
  ASSERT_TRUE(t->CreateIndex("ik", "k", IndexKind::kOrdered).ok());
  engine::Executor exec(db.get());
  const uint64_t probes_before = exec.stats().index_probes.load();
  // A double literal against the INT64 key is not sargable: 2.0 = 2
  // matches under SQL numeric comparison but would miss under exact
  // Value-keyed hashing, so the detector requires the literal type to
  // equal the column's declared type and this stays on the scan path.
  const auto a = RunRows(&exec, "SELECT k FROM t WHERE k = 2.0");
  // An indexless column likewise never probes.
  const auto b = RunRows(&exec, "SELECT k FROM t WHERE tag = 'r1'");
  EXPECT_EQ(exec.stats().index_probes.load(), probes_before);
  (void)a;
  (void)b;
}

// ---------------------------------------------------------------------------
// Enforced agreement: rows AND logical check counts, through the monitor.

struct Instance {
  std::unique_ptr<engine::Database> db;
  std::unique_ptr<core::AccessControlCatalog> catalog;
  std::unique_ptr<core::EnforcementMonitor> monitor;

  explicit Instance(uint64_t policy_seed, double selectivity) {
    db = std::make_unique<engine::Database>();
    workload::PatientsConfig config;
    config.num_patients = 20;
    config.samples_per_patient = 30;  // 600 sensed_data rows.
    EXPECT_TRUE(workload::BuildPatientsDatabase(db.get(), config).ok());
    catalog = std::make_unique<core::AccessControlCatalog>(db.get());
    EXPECT_TRUE(catalog->Initialize().ok());
    EXPECT_TRUE(workload::ConfigurePatientsAccessControl(catalog.get()).ok());
    workload::ScatteredPolicyConfig sp;
    sp.seed = policy_seed;
    sp.selectivity = selectivity;
    EXPECT_TRUE(workload::ApplyScatteredPolicies(catalog.get(), sp).ok());
    monitor =
        std::make_unique<core::EnforcementMonitor>(db.get(), catalog.get());
    for (const auto& name : db->TableNames()) {
      db->FindTable(name)->ResetZoneMap(64);
    }
    Table* sensed = db->FindTable("sensed_data");
    EXPECT_TRUE(
        sensed->CreateIndex("ix_beats", "beats", IndexKind::kOrdered).ok());
    EXPECT_TRUE(
        sensed->CreateIndex("ix_watch", "watch_id", IndexKind::kHash).ok());
  }
};

std::pair<std::string, uint64_t> RunEnforced(core::EnforcementMonitor* m,
                                             const std::string& sql,
                                             const std::string& purpose) {
  const uint64_t before = m->compliance_checks();
  auto rs = m->ExecuteQuery(sql, purpose);
  EXPECT_TRUE(rs.ok()) << sql << "\n  " << rs.status();
  if (!rs.ok()) return {"<error>", 0};
  std::string rendered;
  for (const auto& row : rs->rows) {
    for (const auto& v : row) {
      rendered += v.is_null() ? "NULL" : v.ToString();
      rendered += '|';
    }
    rendered += '\n';
  }
  return {std::move(rendered), m->compliance_checks() - before};
}

TEST(IndexScanTest, EnforcedProbeMatchesScanRowsAndCheckCounts) {
  Instance inst(/*policy_seed=*/13, /*selectivity=*/0.35);
  std::mt19937_64 rng(20260808);
  size_t compared = 0;
  for (int q = 0; q < 60; ++q) {
    std::string pred;
    switch (rng() % 4) {
      case 0:
        pred = "beats = " + std::to_string(60 + rng() % 90);
        break;
      case 1: {
        const uint64_t lo = 60 + rng() % 90;
        pred = "beats between " + std::to_string(lo) + " and " +
               std::to_string(lo + rng() % 25);
        break;
      }
      case 2:
        pred = "watch_id = 'watch" + std::to_string(rng() % 25) + "'";
        break;
      default:
        pred = "beats >= " + std::to_string(120 + rng() % 40);
        break;
    }
    const std::string sql =
        "SELECT watch_id, beats, temperature FROM sensed_data WHERE " + pred;
    inst.monitor->SetIndexScansEnabled(true);
    const auto indexed = RunEnforced(inst.monitor.get(), sql, "p3");
    inst.monitor->SetIndexScansEnabled(false);
    const auto scanned = RunEnforced(inst.monitor.get(), sql, "p3");
    inst.monitor->SetIndexScansEnabled(true);
    ASSERT_EQ(indexed.first, scanned.first) << sql;
    ASSERT_EQ(indexed.second, scanned.second)
        << sql << "\n  the index probe changed the compliance-check count";
    ++compared;
  }
  EXPECT_EQ(compared, 60u);
  // The probes really ran — this suite must not silently degenerate into
  // scan-vs-scan.
  EXPECT_GT(inst.monitor->exec_stats().index_probes.load(), 0u);
}

TEST(IndexScanTest, EnforcedProbeSurvivesDmlAndReenablesAfterDrop) {
  Instance inst(/*policy_seed=*/7, /*selectivity=*/0.35);
  const std::string sql =
      "SELECT watch_id, beats FROM sensed_data WHERE beats between 80 and 110";
  auto both_legs_agree = [&](const std::string& stage) {
    inst.monitor->SetIndexScansEnabled(true);
    const auto indexed = RunEnforced(inst.monitor.get(), sql, "p3");
    inst.monitor->SetIndexScansEnabled(false);
    const auto scanned = RunEnforced(inst.monitor.get(), sql, "p3");
    inst.monitor->SetIndexScansEnabled(true);
    ASSERT_EQ(indexed.first, scanned.first) << stage;
    ASSERT_EQ(indexed.second, scanned.second) << stage;
  };
  both_legs_agree("initial");

  // In-place policy rewrites and erasures: the policy columns change under
  // the index (which does not key them) and row slots compact (which it
  // must track); agreement has to survive both.
  Table* sensed = inst.db->FindTable("sensed_data");
  const size_t pcol = *sensed->intern_column();
  const Value moved = sensed->row(0)[pcol];
  std::vector<size_t> touched;
  for (size_t i = 10; i < sensed->num_rows(); i += 53) touched.push_back(i);
  sensed->UpdateColumnWhere(pcol, moved, touched);
  both_legs_agree("after-policy-rewrite");
  ASSERT_GT(sensed->EraseRows({2, 41, 42, 199}), 0u);
  both_legs_agree("after-erase");

  // Drop + recreate: queries in between must run (scan path), and the
  // recreated index starts stale and rebuilds on its next probe.
  ASSERT_TRUE(sensed->DropIndex("ix_beats").ok());
  both_legs_agree("after-drop");
  ASSERT_TRUE(
      sensed->CreateIndex("ix_beats", "beats", IndexKind::kOrdered).ok());
  both_legs_agree("after-recreate");
}

}  // namespace
}  // namespace aapac
