// Binary snapshots: round trips over all value types, corruption detection,
// and restoring a fully secured database (catalog reload + enforcement).

#include "engine/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>

#include "core/catalog.h"
#include "core/monitor.h"
#include "tests/engine/test_db.h"
#include "workload/patients.h"
#include "workload/policies.h"

namespace aapac::engine {
namespace {

/// Unique-ish temp path per test.
std::string TempPath(const char* tag) {
  return std::string(::testing::TempDir()) + "/aapac_snapshot_" + tag +
         ".bin";
}

TEST(SnapshotTest, RoundTripsAllValueTypes) {
  auto db = MakeTestDb();
  // Add a table covering bool/bytes/null corners explicitly.
  Schema schema;
  ASSERT_TRUE(schema.AddColumn({"b", ValueType::kBool}).ok());
  ASSERT_TRUE(schema.AddColumn({"raw", ValueType::kBytes}).ok());
  Table* extra = *db->CreateTable("extra", schema);
  ASSERT_TRUE(extra->Insert({Value::Bool(true),
                             Value::Bytes(std::string("\x00\xff\x01", 3))})
                  .ok());
  ASSERT_TRUE(extra->Insert({Value::Null(), Value::Null()}).ok());

  const std::string path = TempPath("roundtrip");
  ASSERT_TRUE(SaveSnapshot(*db, path).ok());

  Database restored;
  ASSERT_TRUE(LoadSnapshot(&restored, path).ok());
  EXPECT_EQ(restored.TableNames(), db->TableNames());
  for (const std::string& name : db->TableNames()) {
    const Table* a = db->FindTable(name);
    const Table* b = restored.FindTable(name);
    ASSERT_EQ(a->num_rows(), b->num_rows()) << name;
    ASSERT_EQ(a->schema().num_columns(), b->schema().num_columns()) << name;
    for (size_t c = 0; c < a->schema().num_columns(); ++c) {
      EXPECT_EQ(a->schema().column(c).name, b->schema().column(c).name);
      EXPECT_EQ(a->schema().column(c).type, b->schema().column(c).type);
    }
    for (size_t r = 0; r < a->num_rows(); ++r) {
      EXPECT_TRUE(RowEq{}(a->row(r), b->row(r))) << name << " row " << r;
    }
  }
  std::remove(path.c_str());
}

TEST(SnapshotTest, QueriesAgreeAfterRestore) {
  auto db = MakeTestDb();
  const std::string path = TempPath("queries");
  ASSERT_TRUE(SaveSnapshot(*db, path).ok());
  Database restored;
  ASSERT_TRUE(LoadSnapshot(&restored, path).ok());
  const char* sql =
      "select name, sum(amount) from orders join items on "
      "orders.item_id = items.id group by name";
  EXPECT_EQ(ExecSorted(db.get(), sql), ExecSorted(&restored, sql));
  std::remove(path.c_str());
}

TEST(SnapshotTest, RejectsNonEmptyTarget) {
  auto db = MakeTestDb();
  const std::string path = TempPath("nonempty");
  ASSERT_TRUE(SaveSnapshot(*db, path).ok());
  EXPECT_FALSE(LoadSnapshot(db.get(), path).ok());
  std::remove(path.c_str());
}

TEST(SnapshotTest, RejectsMissingAndCorruptFiles) {
  Database db;
  EXPECT_EQ(LoadSnapshot(&db, "/nonexistent/zz.bin").code(),
            StatusCode::kNotFound);

  const std::string path = TempPath("corrupt");
  {
    std::ofstream f(path, std::ios::binary);
    f << "NOTASNAPSHOTFILE";
  }
  EXPECT_FALSE(LoadSnapshot(&db, path).ok());

  // Valid snapshot with one flipped byte fails the checksum.
  auto source = MakeTestDb();
  ASSERT_TRUE(SaveSnapshot(*source, path).ok());
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(30);
    f.put('\x7f');
  }
  Database fresh;
  Status st = LoadSnapshot(&fresh, path);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("checksum"), std::string::npos);

  // Truncation is also caught.
  ASSERT_TRUE(SaveSnapshot(*source, path).ok());
  {
    std::ifstream in(path, std::ios::binary);
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size() / 2));
  }
  Database fresh2;
  EXPECT_FALSE(LoadSnapshot(&fresh2, path).ok());
  std::remove(path.c_str());
}

TEST(SnapshotTest, SecuredDatabaseSurvivesRestore) {
  // Build, configure and protect; save; restore into a new process-like
  // world; reload the catalog from metadata; enforcement behaves the same.
  auto db = std::make_unique<Database>();
  workload::PatientsConfig config;
  config.num_patients = 6;
  config.samples_per_patient = 3;
  ASSERT_TRUE(workload::BuildPatientsDatabase(db.get(), config).ok());
  core::AccessControlCatalog catalog(db.get());
  ASSERT_TRUE(catalog.Initialize().ok());
  ASSERT_TRUE(workload::ConfigurePatientsAccessControl(&catalog).ok());
  ASSERT_TRUE(catalog.AuthorizeUser("alice", "p1").ok());
  workload::ScatteredPolicyConfig sp;
  sp.selectivity = 0.4;
  ASSERT_TRUE(workload::ApplyScatteredPolicies(&catalog, sp).ok());
  core::EnforcementMonitor monitor(db.get(), &catalog);
  auto before = monitor.ExecuteQuery("select user_id from users", "p1");
  ASSERT_TRUE(before.ok());

  const std::string path = TempPath("secured");
  ASSERT_TRUE(SaveSnapshot(*db, path).ok());

  Database restored;
  ASSERT_TRUE(LoadSnapshot(&restored, path).ok());
  core::AccessControlCatalog restored_catalog(&restored);
  ASSERT_TRUE(restored_catalog.LoadFromMetadataTables().ok());
  EXPECT_EQ(restored_catalog.purposes().size(), 8u);
  EXPECT_EQ(restored_catalog.CategoryOf("sensed_data", "beats"),
            core::DataCategory::kSensitive);
  EXPECT_TRUE(restored_catalog.IsUserAuthorized("alice", "p1"));
  EXPECT_TRUE(restored_catalog.IsProtected("users"));
  EXPECT_FALSE(restored_catalog.IsProtected("pr"));

  core::EnforcementMonitor restored_monitor(&restored, &restored_catalog);
  auto after = restored_monitor.ExecuteQuery("select user_id from users", "p1");
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(after->rows.size(), before->rows.size());
  std::remove(path.c_str());
}

TEST(SnapshotTest, CatalogReloadRequiresMetadataTables) {
  Database db;
  core::AccessControlCatalog catalog(&db);
  EXPECT_EQ(catalog.LoadFromMetadataTables().code(), StatusCode::kNotFound);
}

TEST(SnapshotTest, CatalogReloadRejectsMalformedMetadata) {
  // Pr with a NULL id, Pm with an unknown category: both must be rejected
  // rather than silently half-loaded.
  for (int corruption = 0; corruption < 2; ++corruption) {
    Database db;
    core::AccessControlCatalog catalog(&db);
    ASSERT_TRUE(catalog.Initialize().ok());
    ASSERT_TRUE(catalog.DefinePurpose("p1", "x").ok());
    if (corruption == 0) {
      Table* pr = db.FindTable("pr");
      ASSERT_TRUE(pr->Insert({Value::Null(), Value::String("y")}).ok());
    } else {
      Table* pm = db.FindTable("pm");
      ASSERT_TRUE(pm->Insert({Value::String("c"), Value::String("t"),
                              Value::String("ultra_secret")})
                      .ok());
    }
    core::AccessControlCatalog reloaded(&db);
    EXPECT_FALSE(reloaded.LoadFromMetadataTables().ok())
        << "corruption " << corruption;
  }
}

}  // namespace
}  // namespace aapac::engine
