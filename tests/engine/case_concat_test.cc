// CASE expressions (searched and simple) and the || concatenation operator,
// end to end through parser, printer, binder and evaluator — plus their
// interaction with enforcement (signature derivation sees CASE internals).

#include <gtest/gtest.h>

#include <memory>

#include "core/monitor.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "tests/engine/test_db.h"
#include "workload/patients.h"
#include "workload/policies.h"

namespace aapac::engine {
namespace {

class CaseConcatTest : public ::testing::Test {
 protected:
  void SetUp() override { db_ = MakeTestDb(); }
  std::unique_ptr<Database> db_;
};

TEST_F(CaseConcatTest, SearchedCase) {
  auto rows = ExecSorted(db_.get(),
                         "select id, case when qty >= 20 then 'high' "
                         "when qty >= 10 then 'mid' else 'low' end "
                         "from items");
  EXPECT_EQ(rows, (std::vector<std::string>{"1|mid", "2|high", "3|low",
                                            "4|low", "5|mid"}));
}

TEST_F(CaseConcatTest, SearchedCaseWithoutElseYieldsNull) {
  auto rows = ExecSorted(db_.get(),
                         "select id, case when qty > 15 then 'big' end "
                         "from items");
  EXPECT_EQ(rows, (std::vector<std::string>{"1|NULL", "2|big", "3|NULL",
                                            "4|NULL", "5|NULL"}));
}

TEST_F(CaseConcatTest, SimpleCaseComparesOperand) {
  auto rows = ExecSorted(db_.get(),
                         "select id, case name when 'apple' then 1 "
                         "when 'banana' then 2 else 0 end from items");
  EXPECT_EQ(rows, (std::vector<std::string>{"1|1", "2|2", "3|0", "4|0",
                                            "5|1"}));
}

TEST_F(CaseConcatTest, SimpleCaseNullOperandTakesElse) {
  // NULL never equals a WHEN value.
  auto rows = ExecSorted(db_.get(),
                         "select case name when 'apple' then 'a' else 'x' "
                         "end from items where id = 4");
  EXPECT_EQ(rows, (std::vector<std::string>{"x"}));
}

TEST_F(CaseConcatTest, CaseInWhereAndGroupBy) {
  auto rows = ExecSorted(
      db_.get(),
      "select case when active then 'on' else 'off' end, count(*) "
      "from items where active is not null "
      "group by case when active then 'on' else 'off' end");
  EXPECT_EQ(rows, (std::vector<std::string>{"off|1", "on|3"}));
}

TEST_F(CaseConcatTest, AggregateInsideCase) {
  ResultSet rs = Exec(db_.get(),
                      "select case when count(*) > 3 then 'many' else "
                      "'few' end from items");
  EXPECT_EQ(rs.rows[0][0].AsString(), "many");
}

TEST_F(CaseConcatTest, CaseIsLazy) {
  // The division by zero sits in an untaken branch and must not fire.
  ResultSet rs = Exec(db_.get(),
                      "select case when 1 = 1 then 7 else 1 / 0 end "
                      "from items where id = 1");
  EXPECT_EQ(rs.rows[0][0].AsInt(), 7);
  ExpectExecError(db_.get(),
                  "select case when 1 = 2 then 7 else 1 / 0 end "
                  "from items where id = 1",
                  StatusCode::kExecutionError);
}

TEST_F(CaseConcatTest, Concatenation) {
  ResultSet rs = Exec(db_.get(),
                      "select name || '-' || upper(name) from items "
                      "where id = 1");
  EXPECT_EQ(rs.rows[0][0].AsString(), "apple-APPLE");
}

TEST_F(CaseConcatTest, ConcatNullPropagates) {
  ResultSet rs =
      Exec(db_.get(), "select name || '!' from items where id = 4");
  EXPECT_TRUE(rs.rows[0][0].is_null());
}

TEST_F(CaseConcatTest, ConcatTypeChecked) {
  ExpectExecError(db_.get(), "select name || qty from items",
                  StatusCode::kExecutionError);
}

TEST_F(CaseConcatTest, ParsePrintRoundTrip) {
  for (const char* sql :
       {"select case when (a > 1) then 'x' else 'y' end from t",
        "select case a when 1 then 'one' when 2 then 'two' end from t",
        "select (a || b) from t"}) {
    auto stmt = sql::ParseSelect(sql);
    ASSERT_TRUE(stmt.ok()) << sql;
    const std::string printed = sql::ToSql(**stmt);
    auto reparsed = sql::ParseSelect(printed);
    ASSERT_TRUE(reparsed.ok()) << printed;
    EXPECT_EQ(sql::ToSql(**reparsed), printed);
  }
}

TEST_F(CaseConcatTest, ParseErrors) {
  EXPECT_FALSE(sql::ParseSelect("select case end from t").ok());
  EXPECT_FALSE(sql::ParseSelect("select case when 1 then 2 from t").ok());
  EXPECT_FALSE(sql::ParseSelect("select case when 1 2 end from t").ok());
  // `case` is reserved and cannot be an alias or column.
  EXPECT_FALSE(sql::ParseSelect("select case from t").ok());
}

TEST_F(CaseConcatTest, CaseClonePreservesStructure) {
  auto stmt = sql::ParseSelect(
      "select case a when 1 then 'x' else b || 'y' end from t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(sql::ToSql(*(*stmt)->Clone()), sql::ToSql(**stmt));
}

// Enforcement sees through CASE: columns referenced inside it are derived
// as direct accesses, so a policy allowing only aggregation blocks them.
TEST(CaseEnforcementTest, SignatureDerivationCoversCaseInternals) {
  auto db = std::make_unique<Database>();
  workload::PatientsConfig config;
  config.num_patients = 4;
  config.samples_per_patient = 2;
  ASSERT_TRUE(workload::BuildPatientsDatabase(db.get(), config).ok());
  core::AccessControlCatalog catalog(db.get());
  ASSERT_TRUE(catalog.Initialize().ok());
  ASSERT_TRUE(workload::ConfigurePatientsAccessControl(&catalog).ok());
  workload::ScatteredPolicyConfig sp;
  sp.selectivity = 1.0;  // Nothing complies.
  ASSERT_TRUE(workload::ApplyScatteredPolicies(&catalog, sp).ok());
  core::EnforcementMonitor monitor(db.get(), &catalog);
  auto rs = monitor.ExecuteQuery(
      "select case when temperature > 37 then 'fever' else 'ok' end "
      "from sensed_data",
      "p1");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_TRUE(rs->rows.empty());
  // Policy column hidden inside CASE is rejected.
  auto leak = monitor.ExecuteQuery(
      "select case when policy is null then 1 else 0 end from users", "p1");
  EXPECT_EQ(leak.status().code(), StatusCode::kPermissionDenied);
}

}  // namespace
}  // namespace aapac::engine
