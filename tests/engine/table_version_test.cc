// Copy-on-write table versioning (engine/table.h + util/epoch.h): writers
// build private clones and publish atomically, readers on other threads
// keep their captured snapshot, the writer reads its own uncommitted
// working copy, and no version is reclaimed while a pinned reader can
// still reach it.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "engine/table.h"
#include "tests/engine/test_db.h"
#include "util/epoch.h"

namespace aapac::engine {
namespace {

Row MakeItem(int64_t id) {
  return {Value::Int(id), Value::String("probe"), Value::Double(1.0),
          Value::Int(1), Value::Bool(true)};
}

TEST(TableVersionTest, WriterSeesOwnWritesBeforePublish) {
  std::unique_ptr<Database> db = MakeTestDb();
  db->EnableVersioning();
  Table* items = db->FindTable("items");
  const size_t before = items->num_rows();

  items->BeginWrite();
  ASSERT_TRUE(items->Insert(MakeItem(6)).ok());
  // Same thread: routed to the working copy — read-your-writes.
  EXPECT_EQ(items->num_rows(), before + 1);
  db->PublishWrites();
  EXPECT_EQ(items->num_rows(), before + 1);
  db->DisableVersioning();
}

TEST(TableVersionTest, SnapshotReaderKeepsItsVersionAcrossPublish) {
  std::unique_ptr<Database> db = MakeTestDb();
  db->EnableVersioning();
  Table* items = db->FindTable("items");
  const size_t before = items->num_rows();

  std::atomic<bool> captured{false};
  std::atomic<bool> published{false};
  size_t snapshot_rows_during = 0;
  size_t fresh_rows_after = 0;
  std::thread reader([&] {
    util::EpochManager::Pin pin(util::EpochManager::Instance());
    TableSnapshot snap;
    snap.Capture(*db);
    TableSnapshot::ScopedUse use(&snap);
    captured.store(true, std::memory_order_release);
    while (!published.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    // The writer has published a new version; this thread's snapshot must
    // still resolve the old one.
    snapshot_rows_during = items->num_rows();
  });
  while (!captured.load(std::memory_order_acquire)) std::this_thread::yield();

  items->BeginWrite();
  ASSERT_TRUE(items->Insert(MakeItem(7)).ok());
  db->PublishWrites();
  published.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(snapshot_rows_during, before)
      << "a pinned snapshot observed a write published after its capture";
  {
    // A snapshot captured after the publish sees the new version.
    TableSnapshot snap;
    snap.Capture(*db);
    TableSnapshot::ScopedUse use(&snap);
    fresh_rows_after = items->num_rows();
  }
  EXPECT_EQ(fresh_rows_after, before + 1);
  db->DisableVersioning();
}

TEST(TableVersionTest, NoVersionReclaimedWhileAReaderPinsIt) {
  std::unique_ptr<Database> db = MakeTestDb();
  db->EnableVersioning();
  Table* items = db->FindTable("items");
  const size_t before = items->num_rows();
  constexpr size_t kWrites = 50;

  std::atomic<bool> pinned{false};
  std::atomic<bool> done{false};
  std::atomic<uint64_t> mismatches{0};
  std::thread reader([&] {
    util::EpochManager::Pin pin(util::EpochManager::Instance());
    TableSnapshot snap;
    snap.Capture(*db);
    TableSnapshot::ScopedUse use(&snap);
    const std::vector<Row>& rows = items->rows();
    pinned.store(true, std::memory_order_release);
    // Re-read the pinned version for the whole churn. If any superseded
    // version were freed while reachable, these dereferences are
    // use-after-free (crashes outright or trips ASan/TSan); the value
    // checks additionally catch torn reads.
    while (!done.load(std::memory_order_acquire)) {
      if (items->num_rows() != before || rows.size() != before ||
          rows[0][0].AsInt() != 1) {
        mismatches.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::yield();
    }
  });
  while (!pinned.load(std::memory_order_acquire)) std::this_thread::yield();

  // Churn: every iteration supersedes (and retires) the previous version
  // and aggressively attempts reclamation.
  for (size_t i = 0; i < kWrites; ++i) {
    items->BeginWrite();
    ASSERT_TRUE(items->Insert(MakeItem(100 + static_cast<int64_t>(i))).ok());
    db->PublishWrites();
    util::EpochManager::Instance().TryReclaim();
  }
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(mismatches.load(std::memory_order_relaxed), 0u)
      << "a pinned reader observed another version than the one it captured";

  // Reader gone: everything superseded is now reclaimable, and the current
  // version carries all writes.
  util::EpochManager::Instance().TryReclaim();
  EXPECT_EQ(items->num_rows(), before + kWrites);
  db->DisableVersioning();
}

TEST(TableVersionTest, DisableVersioningFoldsOpenWorkingCopy) {
  std::unique_ptr<Database> db = MakeTestDb();
  db->EnableVersioning();
  Table* items = db->FindTable("items");
  const size_t before = items->num_rows();
  items->BeginWrite();
  ASSERT_TRUE(items->Insert(MakeItem(8)).ok());
  // Tear down with the write transaction still open: the working copy must
  // become the authoritative state, not be dropped.
  db->DisableVersioning();
  EXPECT_EQ(items->num_rows(), before + 1);
  // And the table behaves as a plain unversioned table again.
  ASSERT_TRUE(items->Insert(MakeItem(9)).ok());
  EXPECT_EQ(items->num_rows(), before + 2);
}

TEST(TableVersionTest, UnversionedTablesAreUnaffected) {
  std::unique_ptr<Database> db = MakeTestDb();
  Table* items = db->FindTable("items");
  const size_t before = items->num_rows();
  // Without EnableVersioning, BeginWrite/publish are inert passthroughs.
  items->BeginWrite();
  ASSERT_TRUE(items->Insert(MakeItem(10)).ok());
  EXPECT_EQ(db->PublishWrites(), 0u);
  EXPECT_EQ(items->num_rows(), before + 1);
}

}  // namespace
}  // namespace aapac::engine
