// Batch-boundary property tests for the vectorized executor (engine/vec):
// the batch path must be row-path-exact at every batch geometry — batch
// size 1 (every row its own batch), a batch exactly one zone block wide,
// sizes that do not divide the morsel or the table, and batches larger
// than the whole scan — including rows with NULLs in filter columns,
// batches whose selection vector empties mid-pipeline, and compliance
// batches that fall back to per-row evaluation because the policy blob was
// never interned (id 0). The kernel-level tests drive FilterBatch /
// ForEachPassing directly with a synthetic counting UDF so the deferred
// check settlement (PendingChecks) is asserted call-for-call.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "engine/database.h"
#include "engine/exec.h"
#include "engine/expr.h"
#include "engine/functions.h"
#include "engine/table.h"
#include "engine/vec/kernels.h"
#include "engine/vec/vec.h"
#include "sql/ast.h"
#include "sql/parser.h"
#include "util/task_pool.h"

namespace aapac::engine {
namespace {

constexpr size_t kRows = 1000;

/// big(id, grp, num, label): NULLs scattered through num and label so
/// three-valued logic crosses every batch boundary; 1000 rows so batch
/// sizes 1 / 7 / 64 / 128 / 1000 / 4096 all exercise distinct geometries
/// (64 is the zone-block size below, 7 divides neither 64 nor 128).
std::unique_ptr<Database> MakeDb() {
  auto db = std::make_unique<Database>();
  Schema s;
  EXPECT_TRUE(s.AddColumn({"id", ValueType::kInt64}).ok());
  EXPECT_TRUE(s.AddColumn({"grp", ValueType::kInt64}).ok());
  EXPECT_TRUE(s.AddColumn({"num", ValueType::kDouble}).ok());
  EXPECT_TRUE(s.AddColumn({"label", ValueType::kString}).ok());
  Table* t = *db->CreateTable("big", s);
  t->Reserve(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    const int64_t id = static_cast<int64_t>(i);
    t->InsertUnchecked(
        {Value::Int(id), Value::Int(id % 13),
         (id % 5 == 0) ? Value::Null()
                       : Value::Double(static_cast<double>(id % 37)),
         (id % 11 == 0) ? Value::Null()
                        : Value::String("row" + std::to_string(id % 29))});
  }
  Schema d;
  EXPECT_TRUE(d.AddColumn({"grp", ValueType::kInt64}).ok());
  EXPECT_TRUE(d.AddColumn({"name", ValueType::kString}).ok());
  Table* dim = *db->CreateTable("dim", d);
  for (int64_t g = 0; g < 13; ++g) {
    dim->InsertUnchecked(
        {Value::Int(g), Value::String("group" + std::to_string(g))});
  }
  return db;
}

std::string RenderRows(const ResultSet& rs) {
  std::string out;
  for (const auto& row : rs.rows) {
    for (const auto& v : row) {
      out += v.is_null() ? "NULL" : v.ToString();
      out += '|';
    }
    out += '\n';
  }
  return out;
}

class VecExecTest : public ::testing::Test {
 protected:
  VecExecTest() : db_(MakeDb()), pool_(3) {}

  /// Runs `sql` with the vector path off (reference) and on at every batch
  /// geometry, serial and morsel-parallel, asserting byte-identical rows.
  void ExpectBatchInvariant(const std::string& sql) {
    auto stmt = sql::ParseSelect(sql);
    ASSERT_TRUE(stmt.ok()) << sql;
    Executor ref(db_.get());
    ref.set_vector_enabled(false);
    auto expected = ref.Execute(**stmt);
    ASSERT_TRUE(expected.ok()) << sql << ": " << expected.status();
    const std::string want = RenderRows(*expected);
    // 1: every row its own batch. 64: exactly one zone block (and a
    // divisor of the 128-row morsel). 7 and 100: divide neither the morsel
    // nor the block. 1000: the whole scan in one batch. 4096: larger than
    // the scan.
    for (const size_t batch : {size_t{1}, size_t{7}, size_t{64}, size_t{100},
                               size_t{1000}, size_t{4096}}) {
      Executor exec(db_.get());
      exec.set_batch_rows(batch);
      auto serial = exec.Execute(**stmt);
      ASSERT_TRUE(serial.ok()) << sql << " batch=" << batch << ": "
                               << serial.status();
      ASSERT_EQ(serial->column_names, expected->column_names)
          << sql << " batch=" << batch;
      EXPECT_EQ(RenderRows(*serial), want) << sql << " batch=" << batch;

      ParallelSpec spec;
      spec.pool = &pool_;
      spec.max_threads = 4;
      spec.morsel_rows = 128;  // 1000/128 leaves a ragged final morsel.
      auto parallel = exec.Execute(**stmt, spec);
      ASSERT_TRUE(parallel.ok()) << sql << " batch=" << batch << ": "
                                 << parallel.status();
      EXPECT_EQ(RenderRows(*parallel), want)
          << sql << " batch=" << batch << " (parallel)";
    }
  }

  std::unique_ptr<Database> db_;
  util::TaskPool pool_;
};

TEST_F(VecExecTest, NullsInFilterColumnsAcrossBatchBoundaries) {
  // num IS NULL every 5th row, label every 11th: NULL comparison results
  // must drop rows (not crash, not keep) at every batch geometry.
  ExpectBatchInvariant("SELECT id, num FROM big WHERE num > 18");
  ExpectBatchInvariant(
      "SELECT id FROM big WHERE label = 'row7' AND num < 30");
  ExpectBatchInvariant("SELECT id FROM big WHERE num IS NULL");
  ExpectBatchInvariant(
      "SELECT id FROM big WHERE num > 10 OR label = 'row3'");
}

TEST_F(VecExecTest, EmptySelectionVectors) {
  // No row passes: every batch's selection vector empties at the first
  // filter and downstream kernels must cope with zero survivors.
  ExpectBatchInvariant("SELECT id FROM big WHERE num > 1000");
  // The first conjunct keeps a handful of rows, the second empties most
  // batches mid-pipeline.
  ExpectBatchInvariant(
      "SELECT id FROM big WHERE id < 3 AND num > 0 AND grp = 1");
}

TEST_F(VecExecTest, JoinsAggregatesAndOrderCompose) {
  ExpectBatchInvariant(
      "SELECT big.id, dim.name FROM big, dim "
      "WHERE big.grp = dim.grp AND big.num > 20 ORDER BY big.id");
  ExpectBatchInvariant(
      "SELECT grp, COUNT(*), SUM(num) FROM big WHERE num > 5 "
      "GROUP BY grp ORDER BY grp");
  ExpectBatchInvariant(
      "SELECT DISTINCT label FROM big WHERE num > 30 ORDER BY label");
}

TEST_F(VecExecTest, ErrorsSurfaceIdentically) {
  // Division by zero inside the filter: the batch path must surface the
  // same execution error the row path does.
  const std::string sql = "SELECT id FROM big WHERE num / (grp - 1) > 2";
  auto stmt = sql::ParseSelect(sql);
  ASSERT_TRUE(stmt.ok());
  Executor ref(db_.get());
  ref.set_vector_enabled(false);
  auto row_result = ref.Execute(**stmt);
  ASSERT_FALSE(row_result.ok());
  Executor exec(db_.get());
  exec.set_batch_rows(64);
  auto vec_result = exec.Execute(**stmt);
  ASSERT_FALSE(vec_result.ok());
  EXPECT_EQ(vec_result.status().message(), row_result.status().message());
}

// --- Kernel-level tests (engine/vec/kernels.h). ----------------------------

/// A counting stand-in for complies_with: fn(mask, policy) is true iff the
/// policy blob's first byte is odd. `calls` counts real evaluations,
/// `hits` replayed memo hits, `settled` aggregate zone/batch settlements.
struct CountingUdf {
  ScalarFunction fn;
  uint64_t calls = 0;
  uint64_t hits = 0;
  uint64_t settled = 0;

  explicit CountingUdf(bool aggregate_settlement) {
    fn.name = "test_complies";
    fn.arity = 2;
    fn.memoize_verdicts = true;
    fn.fn = [this](const std::vector<Value>& args) -> Result<Value> {
      ++calls;
      const std::string& policy = args[1].AsBytes();
      return Value::Bool(!policy.empty() && (policy[0] % 2) != 0);
    };
    fn.on_memo_hit = [this] { ++hits; };
    if (aggregate_settlement) {
      fn.on_zone_checks = [this](uint64_t n) { settled += n; };
    }
  }
};

/// Rows whose column 0 is the policy blob; odd ids interleaved with even,
/// and every `uninterned_every`-th row carries a raw (id 0) blob.
std::vector<Row> MakePolicyRows(size_t n, size_t uninterned_every) {
  std::vector<Row> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const char byte = static_cast<char>(1 + (i % 4));  // ids 1..4
    if (uninterned_every != 0 && i % uninterned_every == 0) {
      rows.push_back({Value::Bytes(std::string(1, byte))});
    } else {
      rows.push_back({Value::InternedBytes(std::string(1, byte),
                                           static_cast<uint32_t>(byte))});
    }
  }
  return rows;
}

BoundExprPtr MakeVerdictConjunct(const ScalarFunction* fn,
                                 uint32_t id_ceiling) {
  return std::make_unique<BoundMemoizedVerdict>(
      fn, std::make_unique<BoundLiteral>(Value::Bytes("mask")),
      std::make_unique<BoundColumnRef>(0), id_ceiling);
}

TEST(VecKernelTest, ComplianceKernelSettlesHitsInAggregate) {
  CountingUdf udf(/*aggregate_settlement=*/true);
  const std::vector<Row> rows = MakePolicyRows(256, /*uninterned_every=*/0);
  std::vector<BoundExprPtr> filters;
  filters.push_back(MakeVerdictConjunct(&udf.fn, /*id_ceiling=*/8));

  vec::VecTally tally;
  std::vector<uint32_t> kept;
  const Status st = vec::ForEachPassing(
      filters, filters.size(), rows, 0, rows.size(), /*batch_rows=*/64,
      /*timed=*/false, &tally, [&](const vec::SelVector& sel) {
        kept.insert(kept.end(), sel.begin(), sel.end());
        return Status::OK();
      });
  ASSERT_TRUE(st.ok()) << st;
  // ids 1..4, first byte odd for 1 and 3: half the rows survive, in order.
  ASSERT_EQ(kept.size(), 128u);
  for (size_t i = 0; i + 1 < kept.size(); ++i) {
    EXPECT_LT(kept[i], kept[i + 1]);
  }
  // One real evaluation per distinct id fills the verdict table; every
  // other row is a memo hit settled in aggregate, never via on_memo_hit.
  EXPECT_EQ(udf.calls, 4u);
  EXPECT_EQ(udf.settled, 256u - 4u);
  EXPECT_EQ(udf.hits, 0u);
  EXPECT_EQ(tally.batches_formed, 4u);
  EXPECT_EQ(tally.rows_in, 256u);
  EXPECT_EQ(tally.rows_out, 128u);
  EXPECT_EQ(tally.fallback_rows, 4u);  // The four verdict-table fills.
}

TEST(VecKernelTest, ComplianceKernelReplaysHitsWithoutAggregateCallback) {
  // Without on_zone_checks the kernel must fall back to replaying
  // on_memo_hit per settled check — hit accounting is never dropped.
  CountingUdf udf(/*aggregate_settlement=*/false);
  const std::vector<Row> rows = MakePolicyRows(100, /*uninterned_every=*/0);
  std::vector<BoundExprPtr> filters;
  filters.push_back(MakeVerdictConjunct(&udf.fn, /*id_ceiling=*/8));
  vec::VecTally tally;
  const Status st = vec::ForEachPassing(
      filters, filters.size(), rows, 0, rows.size(), /*batch_rows=*/33,
      /*timed=*/false, &tally,
      [](const vec::SelVector&) { return Status::OK(); });
  ASSERT_TRUE(st.ok()) << st;
  EXPECT_EQ(udf.calls, 4u);
  EXPECT_EQ(udf.hits, 100u - 4u);
  EXPECT_EQ(udf.settled, 0u);
}

TEST(VecKernelTest, UninternedPoliciesFallBackPerRow) {
  // Every 8th row's blob was never interned (id 0): the verdict table
  // cannot answer it, so the kernel must evaluate those rows individually,
  // every time — un-interned tuples are never cached.
  CountingUdf udf(/*aggregate_settlement=*/true);
  const std::vector<Row> rows = MakePolicyRows(256, /*uninterned_every=*/8);
  std::vector<BoundExprPtr> filters;
  filters.push_back(MakeVerdictConjunct(&udf.fn, /*id_ceiling=*/8));
  vec::VecTally tally;
  std::vector<uint32_t> kept;
  const Status st = vec::ForEachPassing(
      filters, filters.size(), rows, 0, rows.size(), /*batch_rows=*/64,
      /*timed=*/false, &tally, [&](const vec::SelVector& sel) {
        kept.insert(kept.end(), sel.begin(), sel.end());
        return Status::OK();
      });
  ASSERT_TRUE(st.ok()) << st;
  const size_t uninterned = 256 / 8;
  // 32 un-interned rows plus one fill per distinct interned id.
  EXPECT_EQ(udf.calls, uninterned + 4u);
  EXPECT_EQ(udf.settled + udf.calls, 256u);  // Checks partition exactly.
  EXPECT_EQ(tally.fallback_rows, uninterned + 4u);
  // Survivors: all rows whose first byte is odd, interned or not.
  size_t expect_kept = 0;
  for (size_t i = 0; i < 256; ++i) {
    if ((1 + (i % 4)) % 2 != 0) ++expect_kept;
  }
  EXPECT_EQ(kept.size(), expect_kept);
}

TEST(VecKernelTest, EmptySelectionVectorShortCircuits) {
  // A first conjunct that drops everything: the compliance kernel after it
  // must see an empty selection vector and perform zero checks.
  CountingUdf udf(/*aggregate_settlement=*/true);
  std::vector<Row> rows;
  for (size_t i = 0; i < 64; ++i) {
    rows.push_back({Value::InternedBytes("\x01", 1), Value::Int(0)});
  }
  std::vector<BoundExprPtr> filters;
  filters.push_back(std::make_unique<BoundBinary>(
      sql::BinaryOp::kGt, std::make_unique<BoundColumnRef>(1),
      std::make_unique<BoundLiteral>(Value::Int(5))));
  filters.push_back(MakeVerdictConjunct(&udf.fn, /*id_ceiling=*/8));
  vec::VecTally tally;
  size_t consumed = 0;
  const Status st = vec::ForEachPassing(
      filters, filters.size(), rows, 0, rows.size(), /*batch_rows=*/16,
      /*timed=*/false, &tally, [&](const vec::SelVector& sel) {
        consumed += sel.size();
        return Status::OK();
      });
  ASSERT_TRUE(st.ok()) << st;
  EXPECT_EQ(consumed, 0u);
  EXPECT_EQ(udf.calls + udf.hits + udf.settled, 0u);
  EXPECT_EQ(tally.rows_out, 0u);
}

TEST(VecKernelTest, BatchSizeOneMatchesWholeScanBatch) {
  // The same filter chain at batch 1 and batch 4096 must keep the same
  // rows and settle the same number of checks.
  for (const size_t batch : {size_t{1}, size_t{4096}}) {
    CountingUdf udf(/*aggregate_settlement=*/true);
    const std::vector<Row> rows = MakePolicyRows(97, /*uninterned_every=*/5);
    std::vector<BoundExprPtr> filters;
    filters.push_back(MakeVerdictConjunct(&udf.fn, /*id_ceiling=*/8));
    vec::VecTally tally;
    std::vector<uint32_t> kept;
    const Status st = vec::ForEachPassing(
        filters, filters.size(), rows, 0, rows.size(), batch,
        /*timed=*/false, &tally, [&](const vec::SelVector& sel) {
          kept.insert(kept.end(), sel.begin(), sel.end());
          return Status::OK();
        });
    ASSERT_TRUE(st.ok()) << st;
    EXPECT_EQ(udf.calls + udf.settled, 97u) << "batch=" << batch;
    size_t expect_kept = 0;
    for (size_t i = 0; i < 97; ++i) {
      if ((1 + (i % 4)) % 2 != 0) ++expect_kept;
    }
    EXPECT_EQ(kept.size(), expect_kept) << "batch=" << batch;
  }
}

TEST(VecKernelTest, FusedChainSurfacesErrorsInRowMajorOrder) {
  // Two typed predicates where an EARLIER row errors on the SECOND filter
  // and a LATER row errors on the FIRST. The row executor walks row-major,
  // so the earlier row's error must win — which a filter-major per-node
  // sweep would get backwards. This pins the fused chain's error order.
  std::vector<Row> rows;
  rows.push_back({Value::Int(1), Value::String("x")});    // 1>10 false: drop.
  rows.push_back({Value::Int(20), Value::String("y")});   // pass, 'y'='x' no.
  rows.push_back({Value::Int(30), Value::Int(7)});        // filter 2 errors.
  rows.push_back({Value::String("s"), Value::String("x")});  // filter 1 errs.
  std::vector<BoundExprPtr> filters;
  filters.push_back(std::make_unique<BoundBinary>(
      sql::BinaryOp::kGt, std::make_unique<BoundColumnRef>(0),
      std::make_unique<BoundLiteral>(Value::Int(10))));
  filters.push_back(std::make_unique<BoundBinary>(
      sql::BinaryOp::kEq, std::make_unique<BoundColumnRef>(1),
      std::make_unique<BoundLiteral>(Value::String("x"))));
  vec::VecTally tally;
  const Status st = vec::ForEachPassing(
      filters, filters.size(), rows, 0, rows.size(), /*batch_rows=*/64,
      /*timed=*/false, &tally,
      [](const vec::SelVector&) { return Status::OK(); });
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.message(), "cannot compare INT64 with STRING");
}

}  // namespace
}  // namespace aapac::engine
