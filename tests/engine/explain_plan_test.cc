// Static plan rendering: join strategies, pushdown placement, projection
// pruning, nesting — and the invariant that explaining never executes.

#include <gtest/gtest.h>

#include "tests/engine/test_db.h"

namespace aapac::engine {
namespace {

class ExplainPlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeTestDb();
    exec_ = std::make_unique<Executor>(db_.get());
  }

  std::string Plan(const std::string& sql) {
    auto plan = exec_->ExplainPlanSql(sql);
    EXPECT_TRUE(plan.ok()) << sql << " -> " << plan.status();
    return std::move(plan).ValueOr("");
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Executor> exec_;
};

TEST_F(ExplainPlanTest, SimpleScanWithFilterAndPruning) {
  const std::string plan =
      Plan("select name from items where qty > 5");
  EXPECT_NE(plan.find("Select\n"), std::string::npos);
  // qty is read only by the scan-claimed filter, which runs in place against
  // the stored rows — only `name` is materialized.
  EXPECT_NE(plan.find("Scan items rows=5 cols=1/5"), std::string::npos);
  EXPECT_NE(plan.find("Filter: (qty > 5)"), std::string::npos);
}

TEST_F(ExplainPlanTest, HashJoinWithKeys) {
  const std::string plan = Plan(
      "select order_id, name from orders join items on "
      "orders.item_id = items.id where items.active");
  EXPECT_NE(plan.find("HashJoin on (orders.item_id = items.id)"),
            std::string::npos);
  EXPECT_NE(plan.find("Scan orders"), std::string::npos);
  EXPECT_NE(plan.find("Scan items"), std::string::npos);
  // The single-table predicate lands on the items scan, not post-join.
  const size_t items_scan = plan.find("Scan items");
  const size_t filter = plan.find("Filter: items.active");
  ASSERT_NE(filter, std::string::npos);
  EXPECT_GT(filter, items_scan);
  EXPECT_EQ(plan.find("post-join"), std::string::npos);
}

TEST_F(ExplainPlanTest, NestedLoopForNonEquiJoin) {
  const std::string plan = Plan(
      "select order_id from orders join items on orders.amount < items.qty");
  EXPECT_NE(plan.find("NestedLoopJoin"), std::string::npos);
  EXPECT_NE(plan.find("Residual: (orders.amount < items.qty)"),
            std::string::npos);
}

TEST_F(ExplainPlanTest, CrossBindingPredicateStaysPostJoin) {
  const std::string plan = Plan(
      "select order_id from orders, items where orders.amount > items.qty");
  EXPECT_NE(plan.find("Filter (post-join): (orders.amount > items.qty)"),
            std::string::npos);
}

TEST_F(ExplainPlanTest, AggregateAndStages) {
  const std::string plan = Plan(
      "select name, count(*) from items group by name having count(*) > 1 "
      "order by name limit 3");
  EXPECT_NE(plan.find("[aggregate group by name having]"), std::string::npos);
  EXPECT_NE(plan.find("[order by]"), std::string::npos);
  EXPECT_NE(plan.find("[limit 3]"), std::string::npos);
}

TEST_F(ExplainPlanTest, DerivedTableNests) {
  const std::string plan = Plan(
      "select s.total from (select item_id, sum(amount) as total from "
      "orders group by item_id) s where s.total > 1");
  EXPECT_NE(plan.find("DerivedTable s"), std::string::npos);
  EXPECT_NE(plan.find("  Select [aggregate group by item_id]"),
            std::string::npos);
  EXPECT_NE(plan.find("Filter: (s.total > 1)"), std::string::npos);
}

TEST_F(ExplainPlanTest, DistinctShown) {
  EXPECT_NE(Plan("select distinct name from items").find("Select distinct"),
            std::string::npos);
}

TEST_F(ExplainPlanTest, ExplainDoesNotTouchData) {
  (void)Plan("select name from items where id in (select item_id from "
             "orders)");
  EXPECT_EQ(exec_->stats().rows_scanned, 0u);
  EXPECT_EQ(exec_->stats().rows_output, 0u);
}

TEST_F(ExplainPlanTest, PushdownOffMovesFiltersToRoot) {
  exec_->set_pushdown_enabled(false);
  const std::string plan = Plan("select name from items where qty > 5");
  EXPECT_EQ(plan.find("Filter: (qty > 5)"), std::string::npos);
  EXPECT_NE(plan.find("Filter (post-join): (qty > 5)"), std::string::npos);
}

TEST_F(ExplainPlanTest, ErrorsPropagate) {
  EXPECT_FALSE(exec_->ExplainPlanSql("select x from missing").ok());
  EXPECT_FALSE(exec_->ExplainPlanSql("not sql").ok());
}

}  // namespace
}  // namespace aapac::engine
