#include <gtest/gtest.h>

#include "engine/database.h"
#include "engine/schema.h"
#include "engine/table.h"

namespace aapac::engine {
namespace {

Schema TwoColumnSchema() {
  Schema s;
  EXPECT_TRUE(s.AddColumn({"id", ValueType::kInt64}).ok());
  EXPECT_TRUE(s.AddColumn({"name", ValueType::kString}).ok());
  return s;
}

TEST(SchemaTest, AddAndFind) {
  Schema s = TwoColumnSchema();
  EXPECT_EQ(s.num_columns(), 2u);
  EXPECT_EQ(s.FindColumn("id"), 0u);
  EXPECT_EQ(s.FindColumn("NAME"), 1u);  // Case-insensitive.
  EXPECT_FALSE(s.FindColumn("missing").has_value());
  EXPECT_TRUE(s.HasColumn("name"));
}

TEST(SchemaTest, RejectsDuplicates) {
  Schema s = TwoColumnSchema();
  EXPECT_EQ(s.AddColumn({"ID", ValueType::kString}).code(),
            StatusCode::kAlreadyExists);
}

TEST(SchemaTest, NormalizesNamesToLower) {
  Schema s;
  ASSERT_TRUE(s.AddColumn({"MiXeD", ValueType::kBool}).ok());
  EXPECT_EQ(s.column(0).name, "mixed");
}

TEST(TableTest, InsertValidatesArity) {
  Table t("t", TwoColumnSchema());
  EXPECT_EQ(t.Insert({Value::Int(1)}).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(t.Insert({Value::Int(1), Value::String("a")}).ok());
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TableTest, InsertValidatesTypes) {
  Table t("t", TwoColumnSchema());
  EXPECT_EQ(t.Insert({Value::String("x"), Value::String("a")}).code(),
            StatusCode::kInvalidArgument);
  // NULLs are accepted in any column.
  EXPECT_TRUE(t.Insert({Value::Null(), Value::Null()}).ok());
}

TEST(TableTest, IntWidensToDouble) {
  Schema s;
  ASSERT_TRUE(s.AddColumn({"x", ValueType::kDouble}).ok());
  Table t("t", s);
  ASSERT_TRUE(t.Insert({Value::Int(3)}).ok());
  EXPECT_EQ(t.row(0)[0].type(), ValueType::kDouble);
  EXPECT_EQ(t.row(0)[0].AsDouble(), 3.0);
}

TEST(TableTest, AddColumnBackfills) {
  Table t("t", TwoColumnSchema());
  ASSERT_TRUE(t.Insert({Value::Int(1), Value::String("a")}).ok());
  ASSERT_TRUE(t.Insert({Value::Int(2), Value::String("b")}).ok());
  ASSERT_TRUE(t.AddColumn({"flag", ValueType::kBool}, Value::Bool(true)).ok());
  EXPECT_EQ(t.schema().num_columns(), 3u);
  EXPECT_TRUE(t.row(0)[2].AsBool());
  EXPECT_TRUE(t.row(1)[2].AsBool());
  // New inserts must supply the new column.
  EXPECT_FALSE(t.Insert({Value::Int(3), Value::String("c")}).ok());
  EXPECT_TRUE(
      t.Insert({Value::Int(3), Value::String("c"), Value::Bool(false)}).ok());
}

TEST(TableTest, UpdateColumnWhere) {
  Table t("t", TwoColumnSchema());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(t.Insert({Value::Int(i), Value::String("x")}).ok());
  }
  const size_t updated =
      t.UpdateColumnWhere(1, Value::String("y"), {1, 3, 99});
  EXPECT_EQ(updated, 2u);  // Index 99 out of range.
  EXPECT_EQ(t.row(1)[1].AsString(), "y");
  EXPECT_EQ(t.row(3)[1].AsString(), "y");
  EXPECT_EQ(t.row(0)[1].AsString(), "x");
}

TEST(DatabaseTest, CreateFindDrop) {
  Database db;
  ASSERT_TRUE(db.CreateTable("T1", TwoColumnSchema()).ok());
  EXPECT_NE(db.FindTable("t1"), nullptr);
  EXPECT_NE(db.FindTable("T1"), nullptr);  // Case-insensitive.
  EXPECT_EQ(db.CreateTable("t1", Schema()).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(db.GetTable("t1").ok());
  EXPECT_EQ(db.GetTable("nope").status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(db.DropTable("t1").ok());
  EXPECT_EQ(db.DropTable("t1").code(), StatusCode::kNotFound);
}

TEST(DatabaseTest, TableNamesSorted) {
  Database db;
  ASSERT_TRUE(db.CreateTable("zeta", Schema()).ok());
  ASSERT_TRUE(db.CreateTable("alpha", Schema()).ok());
  EXPECT_EQ(db.TableNames(), (std::vector<std::string>{"alpha", "zeta"}));
}

TEST(DatabaseTest, HasBuiltinFunctions) {
  Database db;
  EXPECT_TRUE(db.functions().Contains("abs"));
  EXPECT_TRUE(db.functions().Contains("coalesce"));
  EXPECT_FALSE(db.functions().Contains("nope"));
}

}  // namespace
}  // namespace aapac::engine
