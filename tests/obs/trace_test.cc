// The trace store: thread-local current-trace slot, span attachment, nested
// Begin/End ownership, ring-buffer eviction and the \trace rendering.

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>

namespace aapac::obs {
namespace {

TEST(ObsTraceTest, PublishAndFindRoundTrip) {
  if (!kObsCompiledIn) GTEST_SKIP() << "built with AAPAC_OBS_OFF";
  TraceStore store(4);
  const uint64_t id = store.Begin("select 1 from pr", "p1", "alice");
  ASSERT_GT(id, 0u);
  EXPECT_EQ(TraceStore::CurrentId(), id);
  TraceStore::AddSpan(kStageParse, 1000);
  TraceStore::AddSpan(kStageExecute, 2500);
  TraceStore::SetOutcome("ok");
  TraceStore::AddChecks(7);
  store.End();
  EXPECT_EQ(TraceStore::CurrentId(), 0u);

  auto rec = store.Find(id);
  ASSERT_TRUE(rec.ok()) << rec.status();
  EXPECT_EQ(rec->id, id);
  EXPECT_EQ(rec->sql, "select 1 from pr");
  EXPECT_EQ(rec->purpose, "p1");
  EXPECT_EQ(rec->user, "alice");
  EXPECT_EQ(rec->outcome, "ok");
  EXPECT_EQ(rec->checks, 7u);
  ASSERT_EQ(rec->spans.size(), 2u);
  EXPECT_STREQ(rec->spans[0].stage, kStageParse);
  EXPECT_EQ(rec->total_ns(), 3500u);

  auto last = store.Last();
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(last->id, id);
}

TEST(ObsTraceTest, NestedScopedTraceJoinsTheOuterTrace) {
  if (!kObsCompiledIn) GTEST_SKIP() << "built with AAPAC_OBS_OFF";
  TraceStore store(4);
  {
    // The server opens the outer trace; the monitor's inner ScopedTrace must
    // join it, not publish a second record.
    ScopedTrace outer(&store, "select watch_id from sensed_data", "p3", "");
    const uint64_t outer_id = TraceStore::CurrentId();
    ASSERT_GT(outer_id, 0u);
    TraceStore::AddSpan(kStageQueueWait, 100);
    {
      ScopedTrace inner(&store, "select watch_id from sensed_data", "p3", "");
      EXPECT_EQ(TraceStore::CurrentId(), outer_id);
      TraceStore::AddSpan(kStageExecute, 900);
      TraceStore::SetOutcome("ok");
    }
    // Inner destruction must not have published or closed the slot.
    EXPECT_EQ(TraceStore::CurrentId(), outer_id);
    EXPECT_FALSE(store.Last().ok());
  }
  auto rec = store.Last();
  ASSERT_TRUE(rec.ok()) << rec.status();
  EXPECT_EQ(rec->outcome, "ok");
  ASSERT_EQ(rec->spans.size(), 2u);
  EXPECT_STREQ(rec->spans[0].stage, kStageQueueWait);
  EXPECT_STREQ(rec->spans[1].stage, kStageExecute);
}

TEST(ObsTraceTest, OutcomeDefaultsToErrorForAbandonedTraces) {
  if (!kObsCompiledIn) GTEST_SKIP() << "built with AAPAC_OBS_OFF";
  TraceStore store(4);
  { ScopedTrace t(&store, "select nope from users", "p1", ""); }
  auto rec = store.Last();
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->outcome, "error");
}

TEST(ObsTraceTest, RingEvictsOldestTrace) {
  if (!kObsCompiledIn) GTEST_SKIP() << "built with AAPAC_OBS_OFF";
  TraceStore store(2);
  uint64_t ids[3];
  for (int i = 0; i < 3; ++i) {
    ids[i] = store.Begin("q" + std::to_string(i), "p1", "");
    ASSERT_GT(ids[i], 0u);
    store.End();
  }
  EXPECT_FALSE(store.Find(ids[0]).ok());
  EXPECT_TRUE(store.Find(ids[1]).ok());
  EXPECT_TRUE(store.Find(ids[2]).ok());
  auto last = store.Last();
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(last->id, ids[2]);
}

TEST(ObsTraceTest, RenderNamesStagesOutcomeAndDenyReason) {
  if (!kObsCompiledIn) GTEST_SKIP() << "built with AAPAC_OBS_OFF";
  TraceStore store(4);
  const uint64_t id = store.Begin("select user_id from users", "p3", "eve");
  ASSERT_GT(id, 0u);
  TraceStore::AddSpan(kStageParse, 1500);
  TraceStore::SetOutcome("denied");
  TraceStore::SetDenyReason("user 'eve' is not authorized for purpose p3");
  store.End();
  auto rec = store.Find(id);
  ASSERT_TRUE(rec.ok());
  const std::string text = TraceStore::Render(*rec);
  EXPECT_NE(text.find("denied"), std::string::npos) << text;
  EXPECT_NE(text.find(kStageParse), std::string::npos) << text;
  EXPECT_NE(text.find("not authorized"), std::string::npos) << text;
}

TEST(ObsTraceTest, DisabledTimingCapturesNothing) {
  TraceStore store(4);
  SetTimingEnabled(false);
  EXPECT_EQ(store.Begin("select 1 from pr", "p1", ""), 0u);
  EXPECT_EQ(TraceStore::CurrentId(), 0u);
  SetTimingEnabled(true);
  EXPECT_FALSE(store.Last().ok());
}

TEST(ObsTraceTest, MutatorsAreNoOpsWithoutAnOpenTrace) {
  // Must be safe to call from code paths that run outside any trace.
  TraceStore::AddSpan(kStageParse, 1);
  TraceStore::SetOutcome("ok");
  TraceStore::SetDenyReason("nope");
  TraceStore::AddChecks(3);
  EXPECT_EQ(TraceStore::CurrentId(), 0u);
}

}  // namespace
}  // namespace aapac::obs
