// The decision ledger: per-(table, purpose, action) accumulation, outcome
// bucketing, the external running totals, the \ledger rendering and the
// OpenMetrics labeled series.

#include "obs/ledger.h"

#include <gtest/gtest.h>

#include <string>

namespace aapac::obs {
namespace {

EnforceTally TallyWith(uint64_t hits, uint64_t misses) {
  EnforceTally t;
  t.memo_hits = hits;
  t.memo_misses = misses;
  return t;
}

TEST(DecisionLedgerTest, AccumulatesPerKeyAndOrdersSnapshots) {
  if (!kObsCompiledIn) GTEST_SKIP() << "built with AAPAC_OBS_OFF";
  DecisionLedger ledger;
  ledger.Record("sensed_data", "p3", "select", "ok", 40, 36, TallyWith(30, 6));
  ledger.Record("sensed_data", "p3", "select", "ok", 10, 12, TallyWith(12, 0));
  ledger.Record("sensed_data", "p3", "select", "error", 0, 0, EnforceTally{});
  ledger.Record("pr", "p1", "update", "denied", 0, 0, EnforceTally{});

  auto snap = ledger.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  // Ordered by (table, purpose, action): "pr" < "sensed_data".
  EXPECT_EQ(snap[0].table, "pr");
  EXPECT_EQ(snap[0].action, "update");
  EXPECT_EQ(snap[0].denied, 1u);
  EXPECT_EQ(snap[1].table, "sensed_data");
  EXPECT_EQ(snap[1].statements, 3u);
  EXPECT_EQ(snap[1].allowed, 2u);
  EXPECT_EQ(snap[1].errors, 1u);
  EXPECT_EQ(snap[1].rows, 50u);
  EXPECT_EQ(snap[1].checks, 48u);
  EXPECT_EQ(snap[1].tally.memo_hits, 42u);
  EXPECT_EQ(snap[1].tally.memo_misses, 6u);

  // Running totals mirror the map (the enforce.ledger_* counter sources).
  EXPECT_EQ(ledger.entries_counter()->load(), 2u);
  EXPECT_EQ(ledger.statements_counter()->load(), 4u);
  EXPECT_EQ(ledger.checks_counter()->load(), 48u);

  ledger.Reset();
  EXPECT_TRUE(ledger.Snapshot().empty());
  EXPECT_EQ(ledger.entries_counter()->load(), 0u);
}

TEST(DecisionLedgerTest, EmptyOutcomeCountsNoOutcome) {
  if (!kObsCompiledIn) GTEST_SKIP() << "built with AAPAC_OBS_OFF";
  DecisionLedger ledger;
  // Unrestricted replays: attribution only, no ok/denied/error bucket.
  ledger.Record("*", "(unrestricted)", "select", "", 0, 9, TallyWith(9, 0));
  auto snap = ledger.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].statements, 1u);
  EXPECT_EQ(snap[0].allowed + snap[0].denied + snap[0].errors, 0u);
  EXPECT_EQ(snap[0].checks, 9u);
}

TEST(DecisionLedgerTest, RenderShowsRowsAndAttribution) {
  if (!kObsCompiledIn) GTEST_SKIP() << "built with AAPAC_OBS_OFF";
  DecisionLedger ledger;
  EXPECT_NE(ledger.Render().find("no enforcement decisions"),
            std::string::npos);
  ledger.Record("sensed_data", "p3", "select", "ok", 40, 36, TallyWith(30, 6));
  const std::string out = ledger.Render();
  EXPECT_NE(out.find("sensed_data"), std::string::npos);
  EXPECT_NE(out.find("select"), std::string::npos);
  EXPECT_NE(out.find("memo=30 hit/6 fill"), std::string::npos) << out;
}

TEST(DecisionLedgerTest, OpenMetricsSeriesAreLabeledAndEscaped) {
  if (!kObsCompiledIn) GTEST_SKIP() << "built with AAPAC_OBS_OFF";
  DecisionLedger ledger;
  std::string out;
  ledger.AppendOpenMetrics(&out);
  EXPECT_TRUE(out.empty());  // Empty ledger emits no families.

  ledger.Record("sensed_data", "p3", "select", "ok", 40, 36, TallyWith(30, 6));
  ledger.Record("we\"ird", "p1", "insert", "denied", 0, 0, EnforceTally{});
  ledger.AppendOpenMetrics(&out);
  EXPECT_NE(out.find("# TYPE aapac_ledger_checks counter\n"),
            std::string::npos);
  EXPECT_NE(out.find("aapac_ledger_checks_total{table=\"sensed_data\","
                     "purpose=\"p3\",action=\"select\"} 36\n"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("aapac_ledger_memo_hits_total{table=\"sensed_data\","
                     "purpose=\"p3\",action=\"select\"} 30\n"),
            std::string::npos);
  // Label values are escaped per the OpenMetrics exposition rules.
  EXPECT_NE(out.find("table=\"we\\\"ird\""), std::string::npos) << out;
}

}  // namespace
}  // namespace aapac::obs
