// The profile store: thread-local open slot, operator frames with exclusive
// check/tally attribution, ring eviction, the runtime profiling switch and
// the \analyze rendering.

#include "obs/profile.h"

#include <gtest/gtest.h>

#include <string>

namespace aapac::obs {
namespace {

TEST(ProfileStoreTest, PublishAndFindRoundTrip) {
  if (!kObsCompiledIn) GTEST_SKIP() << "built with AAPAC_OBS_OFF";
  ProfileStore store(4);
  const uint64_t id = store.Begin("select 1 from pr", "p1", "alice");
  ASSERT_GT(id, 0u);
  EXPECT_EQ(ProfileStore::CurrentId(), id);

  const size_t op = ProfileStore::BeginOp("Scan", "pr", /*checks_now=*/0);
  ASSERT_NE(op, ProfileStore::kNoOp);
  ProfileTally::MemoHit();
  ProfileTally::MemoMiss();
  ProfileStore::FinishOp(op, /*rows_in=*/10, /*rows_out=*/4, /*checks_now=*/3);
  ProfileStore::SetTotals(/*checks=*/3, /*rows=*/4);
  store.End();
  EXPECT_EQ(ProfileStore::CurrentId(), 0u);

  auto rec = store.Find(id);
  ASSERT_TRUE(rec.ok()) << rec.status();
  EXPECT_EQ(rec->sql, "select 1 from pr");
  EXPECT_EQ(rec->purpose, "p1");
  EXPECT_EQ(rec->user, "alice");
  EXPECT_EQ(rec->total_checks, 3u);
  EXPECT_EQ(rec->total_rows, 4u);
  ASSERT_EQ(rec->ops.size(), 1u);
  EXPECT_EQ(rec->ops[0].label, "Scan");
  EXPECT_EQ(rec->ops[0].detail, "pr");
  EXPECT_EQ(rec->ops[0].rows_in, 10u);
  EXPECT_EQ(rec->ops[0].rows_out, 4u);
  EXPECT_EQ(rec->ops[0].checks, 3u);
  EXPECT_EQ(rec->ops[0].tally.memo_hits, 1u);
  EXPECT_EQ(rec->ops[0].tally.memo_misses, 1u);

  auto last = store.Last();
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(last->id, id);
}

TEST(ProfileStoreTest, ExclusiveAttributionSumsToStatementTotal) {
  if (!kObsCompiledIn) GTEST_SKIP() << "built with AAPAC_OBS_OFF";
  ProfileStore store(4);
  const uint64_t id = store.Begin("q", "p", "");
  ASSERT_GT(id, 0u);

  // Select { Join { Scan(5 checks), Scan(2 checks) }, 1 residual check }.
  const size_t select_op = ProfileStore::BeginOp("Select", "", 0);
  const size_t join_op = ProfileStore::BeginOp("Join", "", 0);
  const size_t left = ProfileStore::BeginOp("Scan", "l", 0);
  ProfileTally::ZoneChecks(5);
  ProfileStore::FinishOp(left, 10, 10, 5);
  const size_t right = ProfileStore::BeginOp("Scan", "r", 5);
  ProfileTally::MemoHit();
  ProfileTally::MemoHit();
  ProfileStore::FinishOp(right, 4, 4, 7);
  ProfileStore::FinishOp(join_op, 14, 6, 7);
  ProfileStore::FinishOp(select_op, 6, 6, 8);
  ProfileStore::SetTotals(8, 6);
  store.End();

  auto rec = store.Find(id);
  ASSERT_TRUE(rec.ok()) << rec.status();
  ASSERT_EQ(rec->ops.size(), 4u);
  uint64_t sum_checks = 0, sum_hits = 0;
  for (const auto& op : rec->ops) {
    sum_checks += op.checks;
    sum_hits += op.tally.memo_hits;
  }
  // Exclusive accounting: per-op checks sum to the statement total even
  // though every ancestor's inclusive window covered the children. The 5
  // zone settles count as memo hits too (the monitor's counter semantics),
  // so hits = 5 settled + 2 replays.
  EXPECT_EQ(sum_checks, rec->total_checks);
  EXPECT_EQ(sum_hits, 7u);
  // The scans carry their own checks; join and select only the residual.
  EXPECT_EQ(rec->ops[0].label, "Select");
  EXPECT_EQ(rec->ops[0].checks, 1u);
  EXPECT_EQ(rec->ops[1].label, "Join");
  EXPECT_EQ(rec->ops[1].checks, 0u);
  EXPECT_EQ(rec->ops[2].checks, 5u);
  EXPECT_EQ(rec->ops[2].tally.zone_checks, 5u);
  EXPECT_EQ(rec->ops[3].checks, 2u);
  // Depths mirror the nesting for tree rendering.
  EXPECT_EQ(rec->ops[0].depth, 0);
  EXPECT_EQ(rec->ops[1].depth, 1);
  EXPECT_EQ(rec->ops[2].depth, 2);
  EXPECT_EQ(rec->ops[3].depth, 2);
}

TEST(ProfileStoreTest, FoldCreditsForeignTallyToTheOpenOperator) {
  if (!kObsCompiledIn) GTEST_SKIP() << "built with AAPAC_OBS_OFF";
  ProfileStore store(4);
  const uint64_t id = store.Begin("q", "p", "");
  const size_t op = ProfileStore::BeginOp("Scan", "t", 0);
  // Simulate the morsel driver folding a pool worker's delta.
  EnforceTally foreign;
  foreign.memo_hits = 3;
  foreign.rows_zone_skipped = 128;
  ProfileTally::Fold(foreign);
  ProfileStore::FinishOp(op, 200, 50, 3);
  store.End();

  auto rec = store.Find(id);
  ASSERT_TRUE(rec.ok());
  ASSERT_EQ(rec->ops.size(), 1u);
  EXPECT_EQ(rec->ops[0].tally.memo_hits, 3u);
  EXPECT_EQ(rec->ops[0].tally.rows_zone_skipped, 128u);
}

TEST(ProfileStoreTest, RingEvictsOldestAndLastTracksNewest) {
  if (!kObsCompiledIn) GTEST_SKIP() << "built with AAPAC_OBS_OFF";
  ProfileStore store(2);
  uint64_t first = 0, last_id = 0;
  for (int i = 0; i < 3; ++i) {
    const uint64_t id = store.Begin("q" + std::to_string(i), "p", "");
    if (i == 0) first = id;
    last_id = id;
    store.End();
  }
  EXPECT_FALSE(store.Find(first).ok());
  auto last = store.Last();
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(last->id, last_id);
  EXPECT_EQ(last->sql, "q2");
}

TEST(ProfileStoreTest, DisabledProfilingSkipsCollectionButKeepsTallies) {
  if (!kObsCompiledIn) GTEST_SKIP() << "built with AAPAC_OBS_OFF";
  ProfileStore store(4);
  SetProfilingEnabled(false);
  EXPECT_EQ(store.Begin("q", "p", ""), 0u);
  EXPECT_EQ(ProfileStore::CurrentId(), 0u);
  EXPECT_EQ(ProfileStore::BeginOp("Scan", "t", 0), ProfileStore::kNoOp);
  // The thread-local tally keeps accumulating (it feeds the ledger).
  const EnforceTally before = ProfileTally::Snapshot();
  ProfileTally::MemoHit();
  EXPECT_EQ(ProfileTally::DeltaSince(before).memo_hits, 1u);
  store.End();  // Must be a harmless no-op without an open profile.
  SetProfilingEnabled(true);
  EXPECT_FALSE(store.Last().ok());
}

TEST(ProfileStoreTest, RenderShowsTreeRowsAndAttribution) {
  if (!kObsCompiledIn) GTEST_SKIP() << "built with AAPAC_OBS_OFF";
  ProfileStore store(4);
  const uint64_t id = store.Begin("select * from pr", "p3", "bob");
  const size_t select_op = ProfileStore::BeginOp("Select", "", 0);
  const size_t scan = ProfileStore::BeginOp("Scan", "pr [row+zone]", 0);
  ProfileTally::ZoneBlock(0);
  ProfileTally::ZoneRowsSkipped(64);
  ProfileStore::FinishOp(scan, 100, 40, 36);
  ProfileStore::FinishOp(select_op, 40, 40, 36);
  ProfileStore::SetTotals(36, 40);
  store.End();

  auto rec = store.Find(id);
  ASSERT_TRUE(rec.ok());
  const std::string out = ProfileStore::Render(*rec);
  EXPECT_NE(out.find("select * from pr"), std::string::npos);
  EXPECT_NE(out.find("Select"), std::string::npos);
  EXPECT_NE(out.find("Scan"), std::string::npos);
  EXPECT_NE(out.find("pr [row+zone]"), std::string::npos);
  EXPECT_NE(out.find("checks=36"), std::string::npos) << out;
}

TEST(ProfileStoreTest, ScopedProfileJoinsTheOuterScope) {
  if (!kObsCompiledIn) GTEST_SKIP() << "built with AAPAC_OBS_OFF";
  ProfileStore store(4);
  uint64_t outer_id = 0;
  {
    ScopedProfile outer(&store, "q", "p", "");
    outer_id = ProfileStore::CurrentId();
    ASSERT_GT(outer_id, 0u);
    {
      ScopedProfile inner(&store, "q", "p", "");
      EXPECT_EQ(ProfileStore::CurrentId(), outer_id);
    }
    // Inner destruction must not have published or closed the slot.
    EXPECT_EQ(ProfileStore::CurrentId(), outer_id);
  }
  EXPECT_EQ(ProfileStore::CurrentId(), 0u);
  auto last = store.Last();
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(last->id, outer_id);
}

}  // namespace
}  // namespace aapac::obs
