// The observability metric primitives: counters, gauges, HDR-style latency
// histograms, the named registry with external counters, and the JSON /
// Prometheus render surfaces that \metrics and the benches consume.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include "obs/ledger.h"

#include <atomic>
#include <string>
#include <vector>

namespace aapac::obs {
namespace {

TEST(ObsMetricsTest, CounterAccumulatesAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsMetricsTest, GaugeTracksHighWaterMark) {
  Gauge g;
  g.Set(5);
  g.Set(2);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.max_value(), 5);
  g.Add(10);
  EXPECT_EQ(g.value(), 12);
  EXPECT_EQ(g.max_value(), 12);
  g.Add(-12);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.max_value(), 12);
  g.Reset();
  EXPECT_EQ(g.max_value(), 0);
}

TEST(ObsMetricsTest, BucketMidRoundTripsToItsBucket) {
  // A bucket's representative value must land back in the same bucket, and
  // bucket indices must be monotone in the recorded value — otherwise
  // percentiles would be reported from the wrong range.
  const std::vector<uint64_t> values = {0,    1,     3,      4,       7,
                                        8,    100,   1000,   4096,    65537,
                                        1u << 20, (1u << 30) + 17};
  size_t prev = 0;
  for (uint64_t v : values) {
    const size_t b = Histogram::BucketFor(v);
    EXPECT_GE(b, prev) << "BucketFor not monotone at " << v;
    prev = b;
    EXPECT_EQ(Histogram::BucketFor(Histogram::BucketMid(b)), b)
        << "mid of bucket " << b << " escapes its bucket";
  }
  EXPECT_LT(Histogram::BucketFor(UINT64_MAX), Histogram::kBucketCount);
}

TEST(ObsMetricsTest, PercentilesWithinBucketResolution) {
  if (!kObsCompiledIn) GTEST_SKIP() << "built with AAPAC_OBS_OFF";
  Histogram h;
  // 1..100 microseconds, uniformly: p50 ~ 50us, p99 ~ 99us. Buckets are at
  // most 25% wide, so a 30% relative window is a safe assertion.
  for (uint64_t us = 1; us <= 100; ++us) h.Record(us * 1000);
  EXPECT_EQ(h.count(), 100u);
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_NEAR(static_cast<double>(snap.p50_ns), 50e3, 0.3 * 50e3);
  EXPECT_NEAR(static_cast<double>(snap.p99_ns), 99e3, 0.3 * 99e3);
  EXPECT_GE(snap.max_ns, snap.p99_ns);
  EXPECT_NEAR(snap.mean_us(), 50.5, 0.1);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Snapshot().p99_ns, 0u);
}

TEST(ObsMetricsTest, RegistryReturnsStablePointers) {
  MetricsRegistry reg;
  Counter* c = reg.counter("enforce.ok");
  Histogram* h = reg.histogram(kStageParse);
  Gauge* g = reg.gauge("server.queue_depth");
  EXPECT_EQ(reg.counter("enforce.ok"), c);
  EXPECT_EQ(reg.histogram(kStageParse), h);
  EXPECT_EQ(reg.gauge("server.queue_depth"), g);
}

TEST(ObsMetricsTest, RenderJsonShapes) {
  MetricsRegistry reg;
  reg.counter("enforce.ok")->Add(3);
  Gauge* g = reg.gauge("server.queue_depth");
  g->Set(5);
  g->Set(2);
  reg.histogram(kStageRewrite)->Record(2000);
  std::atomic<uint64_t> external{7};
  reg.RegisterExternalCounter("cache.hits", &external);

  const std::string json = reg.RenderJson();
  EXPECT_NE(json.find("\"enforce.ok\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"cache.hits\":7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"server.queue_depth\":{\"value\":2,\"max\":5}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"pipeline.rewrite\":{\"count\":"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"p99_us\":"), std::string::npos) << json;

  reg.UnregisterExternalCounter("cache.hits");
  EXPECT_EQ(reg.RenderJson().find("cache.hits"), std::string::npos);
}

TEST(ObsMetricsTest, RenderPrometheusMapsDotsToUnderscores) {
  MetricsRegistry reg;
  reg.counter("enforce.ok")->Add(1);
  reg.histogram(kStageExecute)->Record(1000);
  const std::string text = reg.RenderPrometheusText();
  EXPECT_NE(text.find("# TYPE"), std::string::npos) << text;
  EXPECT_NE(text.find("enforce_ok"), std::string::npos) << text;
  EXPECT_NE(text.find("pipeline_execute"), std::string::npos) << text;
  EXPECT_EQ(text.find("pipeline.execute"), std::string::npos) << text;
}

TEST(ObsMetricsTest, RenderOpenMetricsUsesTotalSuffixAndEof) {
  MetricsRegistry reg;
  reg.counter("enforce.ok")->Add(7);
  reg.gauge("server.queue_depth")->Set(3);
  reg.histogram(kStageExecute)->Record(1000);
  std::atomic<uint64_t> external{11};
  reg.RegisterExternalCounter("cache.hits", &external);

  const std::string text = reg.RenderOpenMetrics();
  // Counters (owned and external) carry the _total sample suffix.
  EXPECT_NE(text.find("# TYPE enforce_ok counter\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("enforce_ok_total 7\n"), std::string::npos) << text;
  EXPECT_NE(text.find("cache_hits_total 11\n"), std::string::npos) << text;
  // Gauges expose the live value plus the high-water-mark family.
  EXPECT_NE(text.find("server_queue_depth 3\n"), std::string::npos) << text;
  EXPECT_NE(text.find("server_queue_depth_max 3\n"), std::string::npos);
  // Histograms render as summaries, same shape as the Prometheus text.
  EXPECT_NE(text.find("pipeline_execute_us"), std::string::npos) << text;
  // The exposition ends with the mandatory OpenMetrics terminator.
  EXPECT_EQ(text.rfind("# EOF\n"), text.size() - 6) << text;
  reg.UnregisterExternalCounter("cache.hits");
}

TEST(ObsMetricsTest, RenderOpenMetricsAppendsLedgerSeries) {
  MetricsRegistry reg;
  reg.counter("enforce.ok")->Add(1);
  DecisionLedger ledger;
  ledger.Record("pr", "p1", "select", "ok", 5, 9, EnforceTally{});
  const std::string text = reg.RenderOpenMetrics(&ledger);
  if (kObsCompiledIn) {
    EXPECT_NE(text.find("aapac_ledger_checks_total{table=\"pr\",purpose=\""
                        "p1\",action=\"select\"} 9\n"),
              std::string::npos)
        << text;
  }
  // The ledger block sits before the terminator.
  EXPECT_EQ(text.rfind("# EOF\n"), text.size() - 6) << text;
}

TEST(ObsMetricsTest, ResetZeroesOwnedMetricsButNotExternals) {
  MetricsRegistry reg;
  reg.counter("enforce.ok")->Add(9);
  reg.histogram(kStageParse)->Record(500);
  std::atomic<uint64_t> external{11};
  reg.RegisterExternalCounter("cache.hits", &external);
  reg.Reset();
  EXPECT_EQ(reg.counter("enforce.ok")->value(), 0u);
  EXPECT_EQ(reg.histogram(kStageParse)->count(), 0u);
  // Externals belong to their owner; Reset must not touch the source atomic.
  EXPECT_EQ(external.load(), 11u);
  EXPECT_NE(reg.RenderJson().find("\"cache.hits\":11"), std::string::npos);
  reg.UnregisterExternalCounter("cache.hits");
}

TEST(ObsMetricsTest, RuntimeTimingToggle) {
  // With AAPAC_OBS_OFF the switch is hardwired off regardless of Set.
  EXPECT_EQ(TimingEnabled(), kObsCompiledIn);
  SetTimingEnabled(false);
  EXPECT_FALSE(TimingEnabled());
  SetTimingEnabled(true);
  EXPECT_EQ(TimingEnabled(), kObsCompiledIn);
}

TEST(ObsMetricsTest, PipelineStageListCoversAllNineStages) {
  EXPECT_EQ(std::size(kPipelineStages), 9u);
  for (const char* stage : kPipelineStages) {
    EXPECT_EQ(std::string(stage).rfind("pipeline.", 0), 0u) << stage;
  }
  // The morsel stages ride along in the canonical list so dump/report tools
  // pick them up, but they only fill when a query actually fans out.
  EXPECT_EQ(std::string(kStageMorselWait), "pipeline.morsel_wait");
  EXPECT_EQ(std::string(kStageMorselExec), "pipeline.morsel_exec");
}

}  // namespace
}  // namespace aapac::obs
