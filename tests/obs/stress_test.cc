// Concurrency stress of the observability layer, run under TSan in CI:
// many threads record into shared metrics and publish traces while readers
// render snapshots — the record path is lock-free and must stay race-free.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace aapac::obs {
namespace {

TEST(ObsStressTest, ConcurrentRecordingWhileRendering) {
  MetricsRegistry reg;
  Counter* counter = reg.counter("enforce.compliance_checks");
  Histogram* hist = reg.histogram(kStageExecute);
  Gauge* gauge = reg.gauge("server.queue_depth");
  std::atomic<uint64_t> external{0};
  reg.RegisterExternalCounter("cache.hits", &external);

  constexpr size_t kWriters = 8;
  constexpr size_t kIters = 2000;
  std::atomic<bool> stop{false};

  std::vector<std::thread> threads;
  for (size_t t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      // Get-or-create races on fresh names alongside hot recording.
      Counter* own = reg.counter("writer." + std::to_string(t));
      for (size_t i = 0; i < kIters; ++i) {
        counter->Add(1);
        own->Add(1);
        hist->Record(i * 100);
        gauge->Add(1);
        gauge->Add(-1);
        external.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const std::string json = reg.RenderJson();
      EXPECT_FALSE(json.empty());
      const std::string prom = reg.RenderPrometheusText();
      EXPECT_FALSE(prom.empty());
    }
  });
  for (auto& t : threads) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(counter->value(), kWriters * kIters);
  EXPECT_EQ(external.load(), kWriters * kIters);
  EXPECT_EQ(gauge->value(), 0);
  if (kObsCompiledIn) {
    EXPECT_EQ(hist->count(), kWriters * kIters);
    EXPECT_EQ(hist->Snapshot().count, kWriters * kIters);
  }
  reg.UnregisterExternalCounter("cache.hits");
}

TEST(ObsStressTest, ConcurrentTracesPublishWithoutRacing) {
  TraceStore store(64);
  constexpr size_t kWriters = 8;
  constexpr size_t kIters = 500;
  std::atomic<bool> stop{false};

  std::vector<std::thread> threads;
  for (size_t t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      const std::string sql = "select " + std::to_string(t) + " from pr";
      for (size_t i = 0; i < kIters; ++i) {
        ScopedTrace trace(&store, sql, "p1", "");
        TraceStore::AddSpan(kStageParse, i);
        TraceStore::AddSpan(kStageExecute, i * 2);
        TraceStore::AddChecks(1);
        TraceStore::SetOutcome("ok");
      }
    });
  }
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      auto last = store.Last();
      if (last.ok()) {
        EXPECT_GT(last->id, 0u);
        EXPECT_FALSE(TraceStore::Render(*last).empty());
      }
    }
  });
  for (auto& t : threads) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  if (kObsCompiledIn) {
    auto last = store.Last();
    ASSERT_TRUE(last.ok());
    EXPECT_EQ(last->outcome, "ok");
    EXPECT_EQ(last->spans.size(), 2u);
  }
}

}  // namespace
}  // namespace aapac::obs
