#include "util/bitstring.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace aapac {
namespace {

TEST(BitStringTest, EmptyByDefault) {
  BitString b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.ToBinary(), "");
}

TEST(BitStringTest, SizedConstructorZeroFills) {
  BitString b(10);
  EXPECT_EQ(b.size(), 10u);
  EXPECT_TRUE(b.AllZeros());
  EXPECT_EQ(b.ToBinary(), "0000000000");
}

TEST(BitStringTest, FromBinaryParses) {
  auto b = BitString::FromBinary("10110100");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->size(), 8u);
  EXPECT_TRUE(b->Get(0));
  EXPECT_FALSE(b->Get(1));
  EXPECT_TRUE(b->Get(2));
  EXPECT_EQ(b->ToBinary(), "10110100");
}

TEST(BitStringTest, FromBinaryRejectsJunk) {
  EXPECT_FALSE(BitString::FromBinary("01x0").ok());
  EXPECT_FALSE(BitString::FromBinary("2").ok());
  EXPECT_TRUE(BitString::FromBinary("").ok());
}

TEST(BitStringTest, SetAndGet) {
  BitString b(16);
  b.Set(3, true);
  b.Set(15, true);
  EXPECT_TRUE(b.Get(3));
  EXPECT_TRUE(b.Get(15));
  EXPECT_FALSE(b.Get(4));
  b.Set(3, false);
  EXPECT_FALSE(b.Get(3));
  EXPECT_EQ(b.CountOnes(), 1u);
}

TEST(BitStringTest, PushBackGrows) {
  BitString b;
  for (int i = 0; i < 12; ++i) b.PushBack(i % 3 == 0);
  EXPECT_EQ(b.size(), 12u);
  EXPECT_EQ(b.ToBinary(), "100100100100");
}

TEST(BitStringTest, AppendConcatenates) {
  BitString a = *BitString::FromBinary("101");
  BitString b = *BitString::FromBinary("0110");
  a.Append(b);
  EXPECT_EQ(a.ToBinary(), "1010110");
}

TEST(BitStringTest, SubstringExtracts) {
  BitString b = *BitString::FromBinary("110010111");
  auto mid = b.Substring(2, 5);
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(mid->ToBinary(), "00101");
  auto whole = b.Substring(0, 9);
  EXPECT_EQ(whole->ToBinary(), "110010111");
  EXPECT_FALSE(b.Substring(5, 5).ok());  // Out of range.
}

TEST(BitStringTest, IsSubsetOf) {
  BitString sub = *BitString::FromBinary("0100100");
  BitString super = *BitString::FromBinary("0110101");
  EXPECT_TRUE(sub.IsSubsetOf(super));
  EXPECT_FALSE(super.IsSubsetOf(sub));
  EXPECT_TRUE(sub.IsSubsetOf(sub));
  // Different lengths never subset.
  EXPECT_FALSE(sub.IsSubsetOf(*BitString::FromBinary("01001000")));
  // All-zeros is a subset of anything of equal length.
  EXPECT_TRUE(BitString(7).IsSubsetOf(super));
}

TEST(BitStringTest, AndMatchesBitwise) {
  BitString a = *BitString::FromBinary("1100");
  BitString b = *BitString::FromBinary("1010");
  auto c = a.And(b);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->ToBinary(), "1000");
  EXPECT_FALSE(a.And(*BitString::FromBinary("10")).ok());
}

TEST(BitStringTest, CountersAndPredicates) {
  EXPECT_TRUE(BitString::FromBinary("1111")->AllOnes());
  EXPECT_FALSE(BitString::FromBinary("1101")->AllOnes());
  EXPECT_TRUE(BitString::FromBinary("0000")->AllZeros());
  EXPECT_EQ(BitString::FromBinary("101101")->CountOnes(), 4u);
}

TEST(BitStringTest, BytesRoundTrip) {
  for (const char* text : {"", "1", "10110100", "110010111", "1111111100000001"}) {
    BitString b = *BitString::FromBinary(text);
    auto back = BitString::FromBytes(b.ToBytes());
    ASSERT_TRUE(back.ok()) << text;
    EXPECT_EQ(*back, b) << text;
    EXPECT_EQ(back->ToBinary(), text);
  }
}

TEST(BitStringTest, FromBytesRejectsCorruptPayloads) {
  EXPECT_FALSE(BitString::FromBytes("").ok());
  EXPECT_FALSE(BitString::FromBytes("abc").ok());
  BitString b = *BitString::FromBinary("10101010");
  std::string bytes = b.ToBytes();
  bytes.pop_back();  // Truncated payload.
  EXPECT_FALSE(BitString::FromBytes(bytes).ok());
  bytes = b.ToBytes() + "x";  // Excess payload.
  EXPECT_FALSE(BitString::FromBytes(bytes).ok());
}

TEST(BitStringTest, FromBytesMasksTrailingGarbage) {
  // A partial final byte with stray bits set must not affect equality.
  BitString b = *BitString::FromBinary("101");
  std::string bytes = b.ToBytes();
  bytes[4 + 0] = static_cast<char>(bytes[4] | 0x1F);  // Set tail bits.
  auto back = BitString::FromBytes(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->ToBinary(), "101");
}

TEST(BitStringTest, EqualityIsStructural) {
  EXPECT_EQ(*BitString::FromBinary("101"), *BitString::FromBinary("101"));
  EXPECT_NE(*BitString::FromBinary("101"), *BitString::FromBinary("100"));
  EXPECT_NE(*BitString::FromBinary("101"), *BitString::FromBinary("1010"));
}

class BitStringRoundTrip : public ::testing::TestWithParam<size_t> {};

TEST_P(BitStringRoundTrip, RandomPatternsSurviveAllRoundTrips) {
  const size_t length = GetParam();
  Rng rng(length * 31 + 7);
  for (int trial = 0; trial < 20; ++trial) {
    BitString b(length);
    for (size_t i = 0; i < length; ++i) b.Set(i, rng.NextBool());
    // Binary round trip.
    EXPECT_EQ(*BitString::FromBinary(b.ToBinary()), b);
    // Bytes round trip.
    EXPECT_EQ(*BitString::FromBytes(b.ToBytes()), b);
    // Substring of the whole equals the original.
    EXPECT_EQ(*b.Substring(0, length), b);
    // a & a == a; a subset of a.
    EXPECT_EQ(*b.And(b), b);
    EXPECT_TRUE(b.IsSubsetOf(b));
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, BitStringRoundTrip,
                         ::testing::Values(1, 2, 7, 8, 9, 15, 16, 17, 23, 24,
                                           31, 32, 33, 63, 64, 65, 128));

}  // namespace
}  // namespace aapac
