// Startup validation of positive-size environment knobs (AAPAC_BATCH_ROWS,
// AAPAC_ZONEMAP_BLOCK): a present-but-invalid value must abort the process
// with a clear message naming the variable — never be silently replaced by
// the default or a truncated prefix of the typo. Boolean kill switches
// (AAPAC_STATIC_OFF, AAPAC_ZONEMAP_OFF, ...) follow the opposite contract:
// never fatal, thrown by any non-"0" non-empty value.

#include <gtest/gtest.h>

#include <cstdlib>

#include "util/env.h"

namespace aapac::util {
namespace {

TEST(ParsePositiveSizeTest, AcceptsPlainPositiveDecimals) {
  auto r = ParsePositiveSize("1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 1u);
  r = ParsePositiveSize("2048");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 2048u);
  r = ParsePositiveSize("  42  ");  // Surrounding whitespace is tolerated.
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42u);
}

TEST(ParsePositiveSizeTest, RejectsZeroNegativeAndNonNumeric) {
  EXPECT_FALSE(ParsePositiveSize("0").ok());
  EXPECT_FALSE(ParsePositiveSize("-1").ok());
  EXPECT_FALSE(ParsePositiveSize("+5").ok());
  EXPECT_FALSE(ParsePositiveSize("").ok());
  EXPECT_FALSE(ParsePositiveSize("   ").ok());
  EXPECT_FALSE(ParsePositiveSize("abc").ok());
  EXPECT_FALSE(ParsePositiveSize("2048k").ok());   // Trailing garbage.
  EXPECT_FALSE(ParsePositiveSize("0x100").ok());   // No hex.
  EXPECT_FALSE(ParsePositiveSize("12 34").ok());   // Inner whitespace.
  EXPECT_FALSE(ParsePositiveSize("1e3").ok());     // No exponents.
  // Overflow: 2^63 and beyond are out of the accepted [1, 2^63) range.
  EXPECT_FALSE(ParsePositiveSize("9223372036854775808").ok());
  EXPECT_FALSE(ParsePositiveSize("99999999999999999999999").ok());
}

TEST(EnvPositiveSizeTest, UnsetOrEmptyFallsBack) {
  unsetenv("AAPAC_TEST_KNOB");
  EXPECT_EQ(EnvPositiveSizeOrDie("AAPAC_TEST_KNOB", 1024), 1024u);
  setenv("AAPAC_TEST_KNOB", "", 1);
  EXPECT_EQ(EnvPositiveSizeOrDie("AAPAC_TEST_KNOB", 512), 512u);
  unsetenv("AAPAC_TEST_KNOB");
}

TEST(EnvPositiveSizeTest, PresentValidValueWins) {
  setenv("AAPAC_TEST_KNOB", "777", 1);
  EXPECT_EQ(EnvPositiveSizeOrDie("AAPAC_TEST_KNOB", 1024), 777u);
  unsetenv("AAPAC_TEST_KNOB");
}

TEST(EnvFlagSetTest, UnsetEmptyAndZeroLeaveTheFeatureOn) {
  unsetenv("AAPAC_STATIC_OFF");
  EXPECT_FALSE(EnvFlagSet("AAPAC_STATIC_OFF"));
  setenv("AAPAC_STATIC_OFF", "", 1);
  EXPECT_FALSE(EnvFlagSet("AAPAC_STATIC_OFF"));
  setenv("AAPAC_STATIC_OFF", "0", 1);
  EXPECT_FALSE(EnvFlagSet("AAPAC_STATIC_OFF"));
  unsetenv("AAPAC_STATIC_OFF");
}

TEST(EnvFlagSetTest, AnyOtherValueThrowsTheKillSwitch) {
  // A kill switch errs on the side of killing: typos disable the feature
  // rather than silently keeping it on, and nothing here is ever fatal.
  for (const char* v : {"1", "true", "on", "yes", "banana", "00", " 0"}) {
    setenv("AAPAC_STATIC_OFF", v, 1);
    EXPECT_TRUE(EnvFlagSet("AAPAC_STATIC_OFF")) << "value '" << v << "'";
  }
  unsetenv("AAPAC_STATIC_OFF");
}

TEST(EnvKnobCombinationTest, KillSwitchDoesNotMaskNumericValidation) {
  // Disabling the StaticVerdict pass must not paper over a malformed batch
  // size: the two knobs are parsed independently, so the valid flag reads
  // true while the numeric knob still fails strict parsing.
  setenv("AAPAC_STATIC_OFF", "1", 1);
  setenv("AAPAC_BATCH_ROWS", "1024k", 1);
  EXPECT_TRUE(EnvFlagSet("AAPAC_STATIC_OFF"));
  EXPECT_FALSE(ParsePositiveSize(std::getenv("AAPAC_BATCH_ROWS")).ok());

  // And the other way round: a valid batch size parses regardless of the
  // flag's state — "0" (feature on) is not mistaken for a numeric zero.
  setenv("AAPAC_STATIC_OFF", "0", 1);
  setenv("AAPAC_BATCH_ROWS", "2048", 1);
  EXPECT_FALSE(EnvFlagSet("AAPAC_STATIC_OFF"));
  EXPECT_EQ(EnvPositiveSizeOrDie("AAPAC_BATCH_ROWS", 1024), 2048u);
  unsetenv("AAPAC_STATIC_OFF");
  unsetenv("AAPAC_BATCH_ROWS");
}

TEST(EnvPositiveSizeDeathTest, InvalidBatchRowsDiesEvenWithStaticOff) {
  // The combination negative path end-to-end: with the kill switch thrown
  // AND the numeric knob malformed, reading the numeric knob still aborts
  // with a message naming AAPAC_BATCH_ROWS (exit 2).
  setenv("AAPAC_STATIC_OFF", "1", 1);
  setenv("AAPAC_BATCH_ROWS", "banana", 1);
  EXPECT_EXIT(EnvPositiveSizeOrDie("AAPAC_BATCH_ROWS", 1024),
              ::testing::ExitedWithCode(2), "AAPAC_BATCH_ROWS");
  setenv("AAPAC_BATCH_ROWS", "-64", 1);
  EXPECT_EXIT(EnvPositiveSizeOrDie("AAPAC_BATCH_ROWS", 1024),
              ::testing::ExitedWithCode(2), "AAPAC_BATCH_ROWS");
  unsetenv("AAPAC_STATIC_OFF");
  unsetenv("AAPAC_BATCH_ROWS");
}

TEST(EnvFlagSetTest, EpochOffFollowsTheKillSwitchContract) {
  // AAPAC_EPOCH_OFF selects the fallback readers-writer lock; like every
  // kill switch it is never fatal and errs toward disabling the feature.
  unsetenv("AAPAC_EPOCH_OFF");
  EXPECT_FALSE(EnvFlagSet("AAPAC_EPOCH_OFF"));
  setenv("AAPAC_EPOCH_OFF", "0", 1);
  EXPECT_FALSE(EnvFlagSet("AAPAC_EPOCH_OFF"));
  for (const char* v : {"1", "true", "banana"}) {
    setenv("AAPAC_EPOCH_OFF", v, 1);
    EXPECT_TRUE(EnvFlagSet("AAPAC_EPOCH_OFF")) << "value '" << v << "'";
  }
  unsetenv("AAPAC_EPOCH_OFF");
}

TEST(EnvPositiveSizeDeathTest, InvalidEpochKnobsDieNamingTheVariable) {
  // The epoch-mode numeric knobs follow the strict startup-validation
  // contract: malformed values abort (exit 2) naming the variable, even
  // with the epoch kill switch thrown — the knobs parse independently.
  setenv("AAPAC_EPOCH_OFF", "1", 1);
  setenv("AAPAC_AUDIT_SHARDS", "lots", 1);
  EXPECT_EXIT(EnvPositiveSizeOrDie("AAPAC_AUDIT_SHARDS", 8),
              ::testing::ExitedWithCode(2), "AAPAC_AUDIT_SHARDS");
  unsetenv("AAPAC_AUDIT_SHARDS");
  setenv("AAPAC_FOLD_MS", "0", 1);
  EXPECT_EXIT(EnvPositiveSizeOrDie("AAPAC_FOLD_MS", 2),
              ::testing::ExitedWithCode(2), "AAPAC_FOLD_MS");
  unsetenv("AAPAC_FOLD_MS");
  setenv("AAPAC_SESSION_SHARDS", "-4", 1);
  EXPECT_EXIT(EnvPositiveSizeOrDie("AAPAC_SESSION_SHARDS", 16),
              ::testing::ExitedWithCode(2), "AAPAC_SESSION_SHARDS");
  unsetenv("AAPAC_SESSION_SHARDS");
  unsetenv("AAPAC_EPOCH_OFF");
}

TEST(EnvPositiveSizeDeathTest, InvalidValueExitsWithNamedError) {
  setenv("AAPAC_TEST_KNOB", "banana", 1);
  EXPECT_EXIT(EnvPositiveSizeOrDie("AAPAC_TEST_KNOB", 1024),
              ::testing::ExitedWithCode(2), "AAPAC_TEST_KNOB");
  setenv("AAPAC_TEST_KNOB", "0", 1);
  EXPECT_EXIT(EnvPositiveSizeOrDie("AAPAC_TEST_KNOB", 1024),
              ::testing::ExitedWithCode(2), "AAPAC_TEST_KNOB");
  setenv("AAPAC_TEST_KNOB", "-16", 1);
  EXPECT_EXIT(EnvPositiveSizeOrDie("AAPAC_TEST_KNOB", 1024),
              ::testing::ExitedWithCode(2), "AAPAC_TEST_KNOB");
  unsetenv("AAPAC_TEST_KNOB");
}

}  // namespace
}  // namespace aapac::util
