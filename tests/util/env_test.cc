// Startup validation of positive-size environment knobs (AAPAC_BATCH_ROWS,
// AAPAC_ZONEMAP_BLOCK): a present-but-invalid value must abort the process
// with a clear message naming the variable — never be silently replaced by
// the default or a truncated prefix of the typo.

#include <gtest/gtest.h>

#include <cstdlib>

#include "util/env.h"

namespace aapac::util {
namespace {

TEST(ParsePositiveSizeTest, AcceptsPlainPositiveDecimals) {
  auto r = ParsePositiveSize("1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 1u);
  r = ParsePositiveSize("2048");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 2048u);
  r = ParsePositiveSize("  42  ");  // Surrounding whitespace is tolerated.
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42u);
}

TEST(ParsePositiveSizeTest, RejectsZeroNegativeAndNonNumeric) {
  EXPECT_FALSE(ParsePositiveSize("0").ok());
  EXPECT_FALSE(ParsePositiveSize("-1").ok());
  EXPECT_FALSE(ParsePositiveSize("+5").ok());
  EXPECT_FALSE(ParsePositiveSize("").ok());
  EXPECT_FALSE(ParsePositiveSize("   ").ok());
  EXPECT_FALSE(ParsePositiveSize("abc").ok());
  EXPECT_FALSE(ParsePositiveSize("2048k").ok());   // Trailing garbage.
  EXPECT_FALSE(ParsePositiveSize("0x100").ok());   // No hex.
  EXPECT_FALSE(ParsePositiveSize("12 34").ok());   // Inner whitespace.
  EXPECT_FALSE(ParsePositiveSize("1e3").ok());     // No exponents.
  // Overflow: 2^63 and beyond are out of the accepted [1, 2^63) range.
  EXPECT_FALSE(ParsePositiveSize("9223372036854775808").ok());
  EXPECT_FALSE(ParsePositiveSize("99999999999999999999999").ok());
}

TEST(EnvPositiveSizeTest, UnsetOrEmptyFallsBack) {
  unsetenv("AAPAC_TEST_KNOB");
  EXPECT_EQ(EnvPositiveSizeOrDie("AAPAC_TEST_KNOB", 1024), 1024u);
  setenv("AAPAC_TEST_KNOB", "", 1);
  EXPECT_EQ(EnvPositiveSizeOrDie("AAPAC_TEST_KNOB", 512), 512u);
  unsetenv("AAPAC_TEST_KNOB");
}

TEST(EnvPositiveSizeTest, PresentValidValueWins) {
  setenv("AAPAC_TEST_KNOB", "777", 1);
  EXPECT_EQ(EnvPositiveSizeOrDie("AAPAC_TEST_KNOB", 1024), 777u);
  unsetenv("AAPAC_TEST_KNOB");
}

TEST(EnvPositiveSizeDeathTest, InvalidValueExitsWithNamedError) {
  setenv("AAPAC_TEST_KNOB", "banana", 1);
  EXPECT_EXIT(EnvPositiveSizeOrDie("AAPAC_TEST_KNOB", 1024),
              ::testing::ExitedWithCode(2), "AAPAC_TEST_KNOB");
  setenv("AAPAC_TEST_KNOB", "0", 1);
  EXPECT_EXIT(EnvPositiveSizeOrDie("AAPAC_TEST_KNOB", 1024),
              ::testing::ExitedWithCode(2), "AAPAC_TEST_KNOB");
  setenv("AAPAC_TEST_KNOB", "-16", 1);
  EXPECT_EXIT(EnvPositiveSizeOrDie("AAPAC_TEST_KNOB", 1024),
              ::testing::ExitedWithCode(2), "AAPAC_TEST_KNOB");
  unsetenv("AAPAC_TEST_KNOB");
}

}  // namespace
}  // namespace aapac::util
