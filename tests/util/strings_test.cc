#include "util/strings.h"

#include <gtest/gtest.h>

namespace aapac {
namespace {

TEST(StringsTest, ToLower) {
  EXPECT_EQ(ToLower("SELECT * FROM Users"), "select * from users");
  EXPECT_EQ(ToLower(""), "");
  EXPECT_EQ(ToLower("a_B9"), "a_b9");
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringsTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split(",x,", ','), (std::vector<std::string>{"", "x", ""}));
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("hi"), "hi");
  EXPECT_EQ(Trim("\t\n hi"), "hi");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringsTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("select", "selec"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "b"));
  EXPECT_TRUE(EqualsIgnoreCase("WaTcH_Id", "watch_id"));
}

struct LikeCase {
  const char* value;
  const char* pattern;
  bool match;
};

class SqlLikeTest : public ::testing::TestWithParam<LikeCase> {};

TEST_P(SqlLikeTest, Matches) {
  const LikeCase& c = GetParam();
  EXPECT_EQ(SqlLikeMatch(c.value, c.pattern), c.match)
      << "'" << c.value << "' LIKE '" << c.pattern << "'";
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SqlLikeTest,
    ::testing::Values(
        LikeCase{"hello", "hello", true},
        LikeCase{"hello", "Hello", false},  // Case sensitive, as PostgreSQL.
        LikeCase{"hello", "h%", true}, LikeCase{"hello", "%o", true},
        LikeCase{"hello", "%ell%", true}, LikeCase{"hello", "h_llo", true},
        LikeCase{"hello", "h__lo", true}, LikeCase{"hello", "hel_", false},
        LikeCase{"hello", "_____", true},
        LikeCase{"hello", "______", false}, LikeCase{"hello", "%", true},
        LikeCase{"", "%", true}, LikeCase{"", "", true},
        LikeCase{"", "_", false}, LikeCase{"abc", "a%c", true},
        LikeCase{"abc", "a%b", false}, LikeCase{"aXbXc", "a%b%c", true},
        LikeCase{"watch100", "watch100", true},
        LikeCase{"watch1000", "watch100", false},
        LikeCase{"no_intolerance", "no_intolerance", true},
        LikeCase{"banana", "%ana", true}, LikeCase{"banana", "%anana%", true},
        LikeCase{"aaa", "%a%a%a%", true}, LikeCase{"aa", "%a%a%a%", false}));

}  // namespace
}  // namespace aapac
