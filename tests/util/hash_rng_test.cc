#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/hash.h"
#include "util/rng.h"

namespace aapac {
namespace {

TEST(HashTest, Fnv1aIsStable) {
  // Known FNV-1a vectors.
  EXPECT_EQ(Fnv1a64(""), 14695981039346656037ull);
  EXPECT_EQ(Fnv1a64("a"), 12638187200555641996ull);
  EXPECT_EQ(Fnv1a64("hello"), 11831194018420276491ull);
}

TEST(HashTest, ShortHexDigestShape) {
  const std::string d = ShortHexDigest("select 1");
  EXPECT_EQ(d.size(), 8u);
  for (char c : d) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << c;
  }
  // Deterministic and input-sensitive.
  EXPECT_EQ(ShortHexDigest("select 1"), d);
  EXPECT_NE(ShortHexDigest("select 2"), d);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
  Rng c(43);
  EXPECT_NE(Rng(42).NextU64(), c.NextU64());
}

TEST(RngTest, NextIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.NextInt(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
  // Degenerate single-value range.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.NextInt(9, 9), 9);
}

TEST(RngTest, NextIntCoversRange) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextInt(0, 4));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBoolRespectsProbabilityRoughly) {
  Rng rng(5);
  int trues = 0;
  for (int i = 0; i < 10000; ++i) trues += rng.NextBool(0.25) ? 1 : 0;
  EXPECT_GT(trues, 2000);
  EXPECT_LT(trues, 3000);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(13);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), shuffled.begin()));
  // With 10 elements a fixed-seed shuffle virtually never yields identity.
  EXPECT_NE(v, shuffled);
}

}  // namespace
}  // namespace aapac
