// TaskPool: the shared thread budget behind the server's query workers and
// the engine's morsel helpers. The contract under test: ParallelFor runs the
// body exactly once per index (with the caller participating, so it works
// even with zero pool threads), front-submitted work overtakes queued work,
// Shutdown drains everything already accepted, and nested ParallelFor from
// inside a pool task cannot deadlock (the caller always claims work itself).

#include "util/task_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

namespace aapac::util {
namespace {

TEST(TaskPoolTest, ParallelForRunsEveryIndexExactlyOnce) {
  TaskPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(hits.size(), 4, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
  pool.Shutdown();
}

TEST(TaskPoolTest, ParallelForWorksWithZeroWorkers) {
  // The caller claims all the work itself; no pool thread is required.
  TaskPool pool(0);
  std::atomic<size_t> sum{0};
  pool.ParallelFor(100, 4, [&](size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 99u * 100u / 2u);
}

TEST(TaskPoolTest, ParallelForWithMaxWorkersOneStaysOnCaller) {
  TaskPool pool(2);
  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<int> foreign{0};
  pool.ParallelFor(64, 1, [&](size_t) {
    if (std::this_thread::get_id() != caller) foreign.fetch_add(1);
  });
  EXPECT_EQ(foreign.load(), 0);
  pool.Shutdown();
}

TEST(TaskPoolTest, ShutdownDrainsAcceptedTasksAndRejectsNewOnes) {
  TaskPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(pool.Submit([&] { ran.fetch_add(1); }));
  }
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 32);
  EXPECT_FALSE(pool.Submit([&] { ran.fetch_add(1); }));
  EXPECT_EQ(ran.load(), 32);
  pool.Shutdown();  // Idempotent.
}

TEST(TaskPoolTest, FrontSubmitOvertakesQueuedWork) {
  // One worker, blocked on a gate; everything below queues up behind it.
  TaskPool pool(1);
  std::mutex mu;
  std::condition_variable cv;
  bool gate_open = false;
  std::vector<int> order;
  std::mutex order_mu;

  ASSERT_TRUE(pool.Submit([&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return gate_open; });
  }));
  ASSERT_TRUE(pool.Submit([&] {
    std::lock_guard<std::mutex> lock(order_mu);
    order.push_back(1);
  }));
  ASSERT_TRUE(pool.Submit(
      [&] {
        std::lock_guard<std::mutex> lock(order_mu);
        order.push_back(2);
      },
      /*front=*/true));
  {
    std::lock_guard<std::mutex> lock(mu);
    gate_open = true;
  }
  cv.notify_all();
  pool.Shutdown();
  ASSERT_EQ(order.size(), 2u);
  // The front submission (2) ran before the earlier back submission (1):
  // morsel helpers beat queued queries.
  EXPECT_EQ(order[0], 2);
  EXPECT_EQ(order[1], 1);
}

TEST(TaskPoolTest, NestedParallelForFromPoolTaskDoesNotDeadlock) {
  // A pool task running its own ParallelFor must finish even when every
  // worker is busy: the inner caller claims all morsels itself if no helper
  // ever frees up.
  TaskPool pool(2);
  std::atomic<size_t> total{0};
  std::atomic<int> done{0};
  for (int t = 0; t < 4; ++t) {
    ASSERT_TRUE(pool.Submit([&] {
      pool.ParallelFor(50, 3, [&](size_t i) { total.fetch_add(i + 1); });
      done.fetch_add(1);
    }));
  }
  pool.Shutdown();
  EXPECT_EQ(done.load(), 4);
  EXPECT_EQ(total.load(), 4u * (50u * 51u / 2u));
}

TEST(TaskPoolTest, ConcurrentParallelForCallsStayIsolated) {
  TaskPool pool(3);
  constexpr size_t kCallers = 4;
  constexpr size_t kItems = 300;
  std::vector<std::atomic<size_t>> counts(kCallers);
  std::vector<std::thread> callers;
  for (size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      pool.ParallelFor(kItems, 3, [&](size_t) {
        counts[c].fetch_add(1, std::memory_order_relaxed);
      });
    });
  }
  for (auto& t : callers) t.join();
  for (size_t c = 0; c < kCallers; ++c) {
    EXPECT_EQ(counts[c].load(), kItems) << "caller " << c;
  }
  pool.Shutdown();
}

}  // namespace
}  // namespace aapac::util
