#ifndef AAPAC_TESTS_UTIL_QUERY_GEN_H_
#define AAPAC_TESTS_UTIL_QUERY_GEN_H_

#include <cstdint>
#include <string>

#include "util/rng.h"

namespace aapac::testutil {

/// One generated SELECT over the patients schema, plus the shape tags the
/// differential harness keys its assertions on.
struct GenQuery {
  std::string sql;
  std::string purpose;      // Declared access purpose (p1..p8).
  bool aggregate = false;   // GROUP BY / aggregate in the select list.
  bool distinct = false;    // SELECT DISTINCT.
  bool has_subquery = false;  // FROM-derived table or IN sub-query.
  bool single_table = false;
  /// LIMIT without ORDER BY truncates enforced and unenforced streams at
  /// different rows, so the subset property does not hold row-for-row; the
  /// harness skips the containment check for these (the parallel≡serial and
  /// reference-monitor checks still apply).
  bool has_limit = false;
};

/// Seeded random SELECT generator for the differential test harness: same
/// seed, same query stream, on every platform (splitmix64-backed Rng). The
/// shapes cover projections, WHERE predicates over every column type of the
/// patients schema (int64, double, string equality and LIKE), two-table
/// joins on the real foreign keys, GROUP BY with aggregates, DISTINCT and
/// FROM-clause sub-queries. The reserved `policy` column and the
/// enforcement UDFs are never emitted — generated queries must be valid
/// *user* queries.
class QueryGenerator {
 public:
  explicit QueryGenerator(uint64_t seed) : rng_(seed) {}

  /// The next query in the stream.
  GenQuery Next();

 private:
  std::string SensedPredicate();
  std::string UsersPredicate();
  std::string ProfilesPredicate();
  std::string PredicateFor(const std::string& table);
  const char* Aggregate();
  const char* SensedNumericColumn();

  GenQuery SingleTableProjection();
  GenQuery SingleTableAggregate();
  GenQuery JoinProjection();
  GenQuery JoinAggregate();
  GenQuery FromSubquery();
  GenQuery InSubquery();

  Rng rng_;
};

}  // namespace aapac::testutil

#endif  // AAPAC_TESTS_UTIL_QUERY_GEN_H_
