#include "tests/util/query_gen.h"

#include <array>

namespace aapac::testutil {

namespace {

constexpr std::array<const char*, 5> kPositions = {"room", "garden", "canteen",
                                                   "gym", "corridor"};
constexpr std::array<const char*, 5> kDiets = {"standard", "low_sugar",
                                               "low_sodium", "vegan",
                                               "high_protein"};
constexpr std::array<const char*, 5> kPreferences = {
    "omnivore", "vegetarian", "pescatarian", "no_red_meat", "spicy"};
constexpr std::array<const char*, 5> kIntolerances = {
    "no_intolerance", "lactose", "gluten", "nuts", "shellfish"};

}  // namespace

std::string QueryGenerator::SensedPredicate() {
  switch (rng_.NextIndex(5)) {
    case 0:  // double comparison.
      return "sensed_data.temperature>" +
             std::to_string(35 + rng_.NextInt(0, 4)) + "." +
             std::to_string(rng_.NextInt(0, 9));
    case 1:  // int64 comparison.
      return "sensed_data.beats>" + std::to_string(rng_.NextInt(60, 150));
    case 2:  // int64 range.
      return "sensed_data.timestamp between " +
             std::to_string(rng_.NextInt(0, 10)) + " and " +
             std::to_string(rng_.NextInt(11, 99));
    case 3:  // string LIKE.
      return std::string("sensed_data.position like '") +
             kPositions[rng_.NextIndex(kPositions.size())] + "'";
    default:  // string equality.
      return "sensed_data.watch_id='watch" +
             std::to_string(rng_.NextInt(0, 50)) + "'";
  }
}

std::string QueryGenerator::UsersPredicate() {
  if (rng_.NextBool()) {
    return "users.watch_id like 'watch" + std::to_string(rng_.NextInt(0, 9)) +
           "%'";
  }
  return "not users.user_id like 'user" + std::to_string(rng_.NextInt(0, 30)) +
         "'";
}

std::string QueryGenerator::ProfilesPredicate() {
  switch (rng_.NextIndex(3)) {
    case 0:
      return std::string("nutritional_profiles.food_intolerances like '") +
             kIntolerances[rng_.NextIndex(kIntolerances.size())] + "'";
    case 1:
      return std::string("nutritional_profiles.diet_type='") +
             kDiets[rng_.NextIndex(kDiets.size())] + "'";
    default:
      return std::string("not nutritional_profiles.food_preferences like '") +
             kPreferences[rng_.NextIndex(kPreferences.size())] + "'";
  }
}

std::string QueryGenerator::PredicateFor(const std::string& table) {
  if (table == "sensed_data") return SensedPredicate();
  if (table == "users") return UsersPredicate();
  return ProfilesPredicate();
}

const char* QueryGenerator::Aggregate() {
  static constexpr std::array<const char*, 4> kAggs = {"avg", "min", "max",
                                                       "sum"};
  return kAggs[rng_.NextIndex(kAggs.size())];
}

const char* QueryGenerator::SensedNumericColumn() {
  static constexpr std::array<const char*, 3> kCols = {
      "sensed_data.temperature", "sensed_data.beats", "sensed_data.timestamp"};
  return kCols[rng_.NextIndex(kCols.size())];
}

GenQuery QueryGenerator::SingleTableProjection() {
  GenQuery q;
  q.single_table = true;
  q.distinct = rng_.NextBool(0.3);
  const std::string head = q.distinct ? "select distinct " : "select ";
  switch (rng_.NextIndex(3)) {
    case 0:
      q.sql = head + "watch_id, temperature, beats, position from sensed_data";
      if (rng_.NextBool(0.8)) q.sql += " where " + SensedPredicate();
      break;
    case 1:
      q.sql = head + "profile_id, diet_type, food_preferences "
                     "from nutritional_profiles";
      if (rng_.NextBool(0.8)) q.sql += " where " + ProfilesPredicate();
      break;
    default:
      q.sql = head + "user_id, watch_id from users";
      if (rng_.NextBool(0.8)) q.sql += " where " + UsersPredicate();
      break;
  }
  if (rng_.NextBool(0.25)) {
    q.sql += " limit " + std::to_string(rng_.NextInt(1, 40));
    q.has_limit = true;
  }
  return q;
}

GenQuery QueryGenerator::SingleTableAggregate() {
  GenQuery q;
  q.single_table = true;
  q.aggregate = true;
  const std::string agg = Aggregate();
  const std::string col = SensedNumericColumn();
  switch (rng_.NextIndex(3)) {
    case 0:
      q.sql = "select sensed_data.position, count(watch_id), " + agg + "(" +
              col + ") from sensed_data group by sensed_data.position";
      break;
    case 1:
      q.sql = "select count(watch_id), " + agg + "(" + col +
              ") from sensed_data where " + SensedPredicate();
      break;
    default:
      q.sql = "select sensed_data.watch_id, " + agg + "(" + col +
              ") from sensed_data group by sensed_data.watch_id having count(" +
              col + ")>" + std::to_string(rng_.NextInt(1, 5));
      break;
  }
  return q;
}

GenQuery QueryGenerator::JoinProjection() {
  GenQuery q;
  if (rng_.NextBool()) {
    q.sql =
        "select users.user_id, sensed_data.temperature, sensed_data.beats "
        "from users join sensed_data on users.watch_id=sensed_data.watch_id "
        "where " +
        SensedPredicate();
  } else {
    q.sql =
        "select users.user_id, nutritional_profiles.diet_type "
        "from users join nutritional_profiles on "
        "users.nutritional_profile_id=nutritional_profiles.profile_id "
        "where " +
        ProfilesPredicate();
  }
  if (rng_.NextBool(0.3)) q.sql += " and " + UsersPredicate();
  return q;
}

GenQuery QueryGenerator::JoinAggregate() {
  GenQuery q;
  q.aggregate = true;
  const std::string agg = Aggregate();
  const std::string col = SensedNumericColumn();
  if (rng_.NextBool(0.3)) {
    q.sql = "select nutritional_profiles.diet_type, " + agg + "(" + col +
            ") from users join sensed_data on "
            "users.watch_id=sensed_data.watch_id join nutritional_profiles "
            "on users.nutritional_profile_id=nutritional_profiles.profile_id "
            "where " +
            SensedPredicate() + " group by nutritional_profiles.diet_type";
    return q;
  }
  q.sql = "select users.user_id, " + agg + "(" + col +
          ") from users join sensed_data on "
          "users.watch_id=sensed_data.watch_id where " +
          SensedPredicate() + " group by users.user_id";
  if (rng_.NextBool(0.4)) {
    q.sql += " having " + agg + "(" + col + ")>" +
             std::to_string(rng_.NextInt(10, 90));
  }
  return q;
}

GenQuery QueryGenerator::FromSubquery() {
  GenQuery q;
  q.has_subquery = true;
  const std::string inner = "select watch_id as w, beats as b, temperature "
                            "as t from sensed_data where " +
                            SensedPredicate();
  if (rng_.NextBool()) {
    q.aggregate = true;
    q.sql = "select users.user_id, avg(s1.b) from users join (" + inner +
            ") s1 on users.watch_id=s1.w group by users.user_id";
  } else {
    q.sql = "select s1.w, s1.t from (" + inner + ") s1 where s1.b>" +
            std::to_string(rng_.NextInt(60, 130));
  }
  return q;
}

GenQuery QueryGenerator::InSubquery() {
  GenQuery q;
  q.has_subquery = true;
  if (rng_.NextBool()) {
    q.sql =
        "select user_id, watch_id from users where nutritional_profile_id in "
        "(select profile_id from nutritional_profiles where " +
        ProfilesPredicate() + ")";
  } else {
    q.sql =
        "select watch_id, beats from sensed_data where watch_id in "
        "(select watch_id from users where " +
        UsersPredicate() + ")";
  }
  return q;
}

GenQuery QueryGenerator::Next() {
  GenQuery q;
  switch (rng_.NextIndex(6)) {
    case 0: q = SingleTableProjection(); break;
    case 1: q = SingleTableAggregate(); break;
    case 2: q = JoinProjection(); break;
    case 3: q = JoinAggregate(); break;
    case 4: q = FromSubquery(); break;
    default: q = InSubquery(); break;
  }
  q.purpose = "p" + std::to_string(rng_.NextInt(1, 8));
  return q;
}

}  // namespace aapac::testutil
