#include "util/status.h"

#include <gtest/gtest.h>

#include "util/result.h"

namespace aapac {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    const char* name;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument,
       "InvalidArgument"},
      {Status::NotFound("b"), StatusCode::kNotFound, "NotFound"},
      {Status::AlreadyExists("c"), StatusCode::kAlreadyExists, "AlreadyExists"},
      {Status::ParseError("d"), StatusCode::kParseError, "ParseError"},
      {Status::BindError("e"), StatusCode::kBindError, "BindError"},
      {Status::ExecutionError("f"), StatusCode::kExecutionError,
       "ExecutionError"},
      {Status::PermissionDenied("g"), StatusCode::kPermissionDenied,
       "PermissionDenied"},
      {Status::Unsupported("h"), StatusCode::kUnsupported, "Unsupported"},
      {Status::Internal("i"), StatusCode::kInternal, "Internal"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(std::string(StatusCodeToString(c.code)), c.name);
    EXPECT_NE(c.status.ToString().find(c.name), std::string::npos);
  }
}

TEST(StatusTest, MessagePreserved) {
  Status s = Status::NotFound("table 'foo' missing");
  EXPECT_EQ(s.message(), "table 'foo' missing");
  EXPECT_EQ(s.ToString(), "NotFound: table 'foo' missing");
}

Status FailsAtSecond() {
  AAPAC_RETURN_NOT_OK(Status::OK());
  AAPAC_RETURN_NOT_OK(Status::NotFound("second"));
  return Status::Internal("unreachable");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  Status s = FailsAtSecond();
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "second");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> bad = Status::Internal("x");
  EXPECT_EQ(std::move(bad).ValueOr(7), 7);
  Result<int> good = 3;
  EXPECT_EQ(std::move(good).ValueOr(7), 3);
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  AAPAC_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> q = Quarter(8);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(*q, 2);
  EXPECT_FALSE(Quarter(6).ok());   // 6/2 = 3 is odd.
  EXPECT_FALSE(Quarter(5).ok());
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace aapac
