// EpochManager semantics: pins hold back reclamation, unpinning releases
// it, nesting refreshes nothing, and stop-the-world drains and blocks pins.
//
// The manager is a process-global singleton shared by every test in this
// binary, so assertions work on deltas of the monotone totals (never on
// absolutes) and use per-test sentinel objects to observe reclamation.

#include "util/epoch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

namespace aapac::util {
namespace {

/// Sets a flag from its destructor — the observable for "was this retired
/// object actually freed".
struct Sentinel {
  explicit Sentinel(std::atomic<bool>* freed) : freed(freed) {}
  ~Sentinel() { freed->store(true, std::memory_order_release); }
  std::atomic<bool>* freed;
};

TEST(EpochTest, BumpAdvancesTheClock) {
  EpochManager& mgr = EpochManager::Instance();
  const uint64_t before = mgr.current_epoch();
  mgr.BumpEpoch();
  EXPECT_EQ(mgr.current_epoch(), before + 1);
}

TEST(EpochTest, RetiredObjectFreesOnceNoPinCovers) {
  EpochManager& mgr = EpochManager::Instance();
  std::atomic<bool> freed{false};
  mgr.BumpEpoch();
  mgr.Retire(mgr.current_epoch(), std::make_shared<Sentinel>(&freed));
  // No pins anywhere: the very next reclaim pass frees it.
  mgr.TryReclaim();
  EXPECT_TRUE(freed.load(std::memory_order_acquire));
}

TEST(EpochTest, PinHoldsBackReclamationUntilReleased) {
  EpochManager& mgr = EpochManager::Instance();
  std::atomic<bool> freed{false};
  std::atomic<bool> pinned{false};
  std::atomic<bool> release{false};

  // The reader pins the pre-retire epoch on its own thread (pins are
  // per-thread state).
  std::thread reader([&] {
    EpochManager::Pin pin(mgr);
    pinned.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  });
  while (!pinned.load(std::memory_order_acquire)) std::this_thread::yield();

  // Writer: supersede an object at a newer epoch. The reader's pin is at an
  // older-or-equal epoch, so the object must survive reclamation.
  mgr.BumpEpoch();
  mgr.Retire(mgr.current_epoch(), std::make_shared<Sentinel>(&freed));
  mgr.TryReclaim();
  EXPECT_FALSE(freed.load(std::memory_order_acquire))
      << "retired object freed while a reader still pinned an older epoch";

  release.store(true, std::memory_order_release);
  reader.join();
  mgr.TryReclaim();
  EXPECT_TRUE(freed.load(std::memory_order_acquire))
      << "retired object not freed after the last pin released";
}

TEST(EpochTest, NestedPinsKeepTheOuterEpoch) {
  EpochManager& mgr = EpochManager::Instance();
  std::atomic<bool> freed{false};
  std::atomic<bool> outer_pinned{false};
  std::atomic<bool> inner_done{false};
  std::atomic<bool> release{false};

  std::thread reader([&] {
    EpochManager::Pin outer(mgr);
    outer_pinned.store(true, std::memory_order_release);
    while (!inner_done.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    {
      // Inner pin on the same thread; its release must NOT unpin the
      // thread — the outer pin still protects the old epoch.
      EpochManager::Pin inner(mgr);
    }
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  });
  while (!outer_pinned.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  mgr.BumpEpoch();
  mgr.Retire(mgr.current_epoch(), std::make_shared<Sentinel>(&freed));
  inner_done.store(true, std::memory_order_release);
  // Give the reader time to enter and leave the inner pin.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  mgr.TryReclaim();
  EXPECT_FALSE(freed.load(std::memory_order_acquire))
      << "inner pin release unpinned a thread that still holds an outer pin";
  release.store(true, std::memory_order_release);
  reader.join();
  mgr.TryReclaim();
  EXPECT_TRUE(freed.load(std::memory_order_acquire));
}

TEST(EpochTest, StopTheWorldDrainsAndBlocksPins) {
  EpochManager& mgr = EpochManager::Instance();
  std::atomic<bool> pinned{false};
  std::atomic<bool> release{false};
  std::thread reader([&] {
    EpochManager::Pin pin(mgr);
    pinned.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  });
  while (!pinned.load(std::memory_order_acquire)) std::this_thread::yield();

  // StopTheWorld must wait for the live pin, so run it on a helper and
  // observe it NOT completing until the reader releases.
  std::atomic<bool> stopped{false};
  std::thread stopper([&] {
    mgr.StopTheWorld();
    stopped.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(stopped.load(std::memory_order_acquire))
      << "StopTheWorld returned while a reader still held a pin";
  release.store(true, std::memory_order_release);
  reader.join();
  stopper.join();
  EXPECT_TRUE(stopped.load(std::memory_order_acquire));
  EXPECT_TRUE(mgr.stopped());

  // While stopped, a new pin attempt must block until Resume.
  std::atomic<bool> late_pinned{false};
  std::thread late([&] {
    EpochManager::Pin pin(mgr);
    late_pinned.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(late_pinned.load(std::memory_order_acquire))
      << "a pin was granted during stop-the-world";
  mgr.Resume();
  late.join();
  EXPECT_TRUE(late_pinned.load(std::memory_order_acquire));
  EXPECT_FALSE(mgr.stopped());
}

TEST(EpochTest, ChurnReclaimsEverythingOnceReadersQuiesce) {
  EpochManager& mgr = EpochManager::Instance();
  constexpr size_t kReaders = 4;
  constexpr size_t kRetires = 200;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> freed{0};

  std::vector<std::thread> readers;
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        EpochManager::Pin pin(mgr);
        std::this_thread::yield();
      }
    });
  }

  struct Counting {
    explicit Counting(std::atomic<uint64_t>* n) : n(n) {}
    ~Counting() { n->fetch_add(1, std::memory_order_relaxed); }
    std::atomic<uint64_t>* n;
  };
  for (size_t i = 0; i < kRetires; ++i) {
    mgr.BumpEpoch();
    mgr.Retire(mgr.current_epoch(), std::make_shared<Counting>(&freed));
    mgr.TryReclaim();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
  mgr.TryReclaim();
  EXPECT_EQ(freed.load(std::memory_order_relaxed), kRetires)
      << "every retired object must be freed once all readers quiesced";
  EXPECT_EQ(mgr.stats().retired_pending, 0u);
}

}  // namespace
}  // namespace aapac::util
