// End-to-end pipeline tests: patients database -> configuration -> scattered
// policies -> original vs. rewritten execution of the paper's q1-q8 and the
// random r1-r20.

#include <gtest/gtest.h>

#include <memory>

#include "core/catalog.h"
#include "core/monitor.h"
#include "workload/patients.h"
#include "workload/policies.h"
#include "workload/queries.h"

namespace aapac {
namespace {

using core::AccessControlCatalog;
using core::EnforcementMonitor;
using engine::Database;
using engine::ResultSet;
using workload::BenchQuery;

class EndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>();
    workload::PatientsConfig config;
    config.num_patients = 50;
    config.samples_per_patient = 20;
    ASSERT_TRUE(workload::BuildPatientsDatabase(db_.get(), config).ok());
    catalog_ = std::make_unique<AccessControlCatalog>(db_.get());
    ASSERT_TRUE(catalog_->Initialize().ok());
    ASSERT_TRUE(workload::ConfigurePatientsAccessControl(catalog_.get()).ok());
    monitor_ = std::make_unique<EnforcementMonitor>(db_.get(), catalog_.get());
  }

  void ApplySelectivity(double s) {
    workload::ScatteredPolicyConfig config;
    config.selectivity = s;
    ASSERT_TRUE(workload::ApplyScatteredPolicies(catalog_.get(), config).ok());
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<AccessControlCatalog> catalog_;
  std::unique_ptr<EnforcementMonitor> monitor_;
};

TEST_F(EndToEndTest, OriginalQueriesAllExecute) {
  for (const BenchQuery& q : workload::PaperQueries()) {
    auto rs = monitor_->ExecuteUnrestricted(q.sql);
    ASSERT_TRUE(rs.ok()) << q.name << ": " << rs.status();
  }
  for (const BenchQuery& q : workload::RandomQueries(/*seed=*/123)) {
    auto rs = monitor_->ExecuteUnrestricted(q.sql);
    ASSERT_TRUE(rs.ok()) << q.name << " (" << q.sql << "): " << rs.status();
  }
}

TEST_F(EndToEndTest, RewrittenQueriesAllExecute) {
  ApplySelectivity(0.4);
  for (const BenchQuery& q : workload::PaperQueries()) {
    auto rs = monitor_->ExecuteQuery(q.sql, "p6");
    ASSERT_TRUE(rs.ok()) << q.name << ": " << rs.status();
  }
  for (const BenchQuery& q : workload::RandomQueries(/*seed=*/123)) {
    auto rs = monitor_->ExecuteQuery(q.sql, "p6");
    ASSERT_TRUE(rs.ok()) << q.name << " (" << q.sql << "): " << rs.status();
  }
}

// With selectivity 0 every policy contains a pass-all rule, so rewritten
// queries must return exactly the original result sets (Theorems 1+2 in the
// everything-complies case).
TEST_F(EndToEndTest, SelectivityZeroPreservesResults) {
  ApplySelectivity(0.0);
  for (const BenchQuery& q : workload::PaperQueries()) {
    auto original = monitor_->ExecuteUnrestricted(q.sql);
    ASSERT_TRUE(original.ok()) << q.name << ": " << original.status();
    auto rewritten = monitor_->ExecuteQuery(q.sql, "p1");
    ASSERT_TRUE(rewritten.ok()) << q.name << ": " << rewritten.status();
    EXPECT_EQ(original->rows.size(), rewritten->rows.size()) << q.name;
  }
}

// With selectivity 1 no policy complies: every rewritten non-aggregate query
// returns nothing.
TEST_F(EndToEndTest, SelectivityOneBlocksEverything) {
  ApplySelectivity(1.0);
  auto rs = monitor_->ExecuteQuery("select user_id from users", "p1");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_TRUE(rs->rows.empty());
  rs = monitor_->ExecuteQuery(workload::PaperQueries()[4].sql, "p1");  // q5.
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_TRUE(rs->rows.empty());
}

// Compliance checks decrease (weakly) as selectivity grows — the Fig. 6
// trend.
TEST_F(EndToEndTest, ChecksDecreaseWithSelectivity) {
  const BenchQuery q5 = workload::PaperQueries()[4];
  uint64_t previous = UINT64_MAX;
  for (double s : {0.0, 0.4, 0.8}) {
    ApplySelectivity(s);
    monitor_->ResetComplianceChecks();
    ASSERT_TRUE(monitor_->ExecuteQuery(q5.sql, "p3").ok());
    const uint64_t checks = monitor_->compliance_checks();
    EXPECT_LE(checks, previous) << "selectivity " << s;
    previous = checks;
  }
}

// Unknown purpose and unauthorized user are rejected up front.
TEST_F(EndToEndTest, RejectsUnknownPurposeAndUnauthorizedUser) {
  ApplySelectivity(0.0);
  auto rs = monitor_->ExecuteQuery("select user_id from users", "p99");
  EXPECT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kNotFound);

  rs = monitor_->ExecuteQuery("select user_id from users", "p1", "mallory");
  EXPECT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kPermissionDenied);

  ASSERT_TRUE(catalog_->AuthorizeUser("alice", "p1").ok());
  rs = monitor_->ExecuteQuery("select user_id from users", "p1", "alice");
  EXPECT_TRUE(rs.ok()) << rs.status();
}

// Purposes can be given by description ("research" = p6).
TEST_F(EndToEndTest, ResolvesPurposeDescriptions) {
  ApplySelectivity(0.0);
  auto rs = monitor_->ExecuteQuery("select user_id from users", "research");
  EXPECT_TRUE(rs.ok()) << rs.status();
}

// Rewritten star queries must not leak the policy column.
TEST_F(EndToEndTest, StarExpansionHidesPolicyColumn) {
  ApplySelectivity(0.0);
  auto rs = monitor_->ExecuteQuery("select * from users", "p1");
  ASSERT_TRUE(rs.ok()) << rs.status();
  for (const std::string& name : rs->column_names) {
    EXPECT_NE(name, "policy");
  }
  EXPECT_EQ(rs->column_names.size(), 3u);
}

}  // namespace
}  // namespace aapac
