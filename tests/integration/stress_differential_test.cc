// Fuzz-differential testing over the stress query generator: hundreds of
// random, deeply shaped queries must parse, round-trip through the printer,
// plan, execute, survive enforcement, and satisfy the cross-implementation
// invariants (pushdown on/off equality; rewritten ⊆ original for plain
// queries).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/catalog.h"
#include "core/monitor.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "workload/patients.h"
#include "workload/policies.h"
#include "workload/stress.h"

namespace aapac {
namespace {

std::vector<std::string> Stringify(const engine::ResultSet& rs) {
  std::vector<std::string> out;
  for (const auto& row : rs.rows) {
    std::string line;
    for (const auto& v : row) {
      line += v.ToString();
      line += "|";
    }
    out.push_back(std::move(line));
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool IsSubMultiset(const std::vector<std::string>& sub,
                   const std::vector<std::string>& super) {
  size_t j = 0;
  for (const std::string& s : sub) {
    while (j < super.size() && super[j] < s) ++j;
    if (j == super.size() || super[j] != s) return false;
    ++j;
  }
  return true;
}

class StressDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StressDifferentialTest, InvariantsHoldOnRandomQueries) {
  auto db = std::make_unique<engine::Database>();
  workload::PatientsConfig config;
  config.num_patients = 25;
  config.samples_per_patient = 6;
  config.seed = GetParam() * 17 + 3;
  ASSERT_TRUE(workload::BuildPatientsDatabase(db.get(), config).ok());
  core::AccessControlCatalog catalog(db.get());
  ASSERT_TRUE(catalog.Initialize().ok());
  ASSERT_TRUE(workload::ConfigurePatientsAccessControl(&catalog).ok());
  workload::ScatteredPolicyConfig sp;
  sp.selectivity = 0.3;
  sp.seed = GetParam();
  ASSERT_TRUE(workload::ApplyScatteredPolicies(&catalog, sp).ok());
  core::EnforcementMonitor monitor(db.get(), &catalog);

  int executed = 0;
  for (const auto& q : workload::StressQueries(GetParam(), 60)) {
    SCOPED_TRACE(q.name + ": " + q.sql);

    // Parse + printer fixpoint.
    auto stmt = sql::ParseSelect(q.sql);
    ASSERT_TRUE(stmt.ok()) << stmt.status();
    const std::string printed = sql::ToSql(**stmt);
    auto reparsed = sql::ParseSelect(printed);
    ASSERT_TRUE(reparsed.ok()) << printed;
    EXPECT_EQ(sql::ToSql(**reparsed), printed);

    // Plan rendering never crashes or errors.
    {
      engine::Executor exec(db.get());
      auto plan = exec.ExplainPlanSql(q.sql);
      ASSERT_TRUE(plan.ok()) << plan.status();
      EXPECT_FALSE(plan->empty());
    }

    // Original executes; pushdown on/off agree.
    monitor.SetPushdownEnabled(true);
    auto original = monitor.ExecuteUnrestricted(q.sql);
    ASSERT_TRUE(original.ok()) << original.status();
    monitor.SetPushdownEnabled(false);
    auto no_push = monitor.ExecuteUnrestricted(q.sql);
    ASSERT_TRUE(no_push.ok()) << no_push.status();
    EXPECT_EQ(Stringify(*original), Stringify(*no_push));
    monitor.SetPushdownEnabled(true);

    // Rewritten executes; for plain (non-aggregate) queries the result is
    // a sub-multiset of the original.
    auto rewritten = monitor.ExecuteQuery(q.sql, "p3");
    ASSERT_TRUE(rewritten.ok()) << rewritten.status();
    if (q.description == "plain") {
      EXPECT_TRUE(IsSubMultiset(Stringify(*rewritten), Stringify(*original)));
    }
    ++executed;
  }
  EXPECT_EQ(executed, 60);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressDifferentialTest,
                         ::testing::Values(11, 22, 33, 44));

TEST(StressGeneratorTest, DeterministicAndLabelled) {
  const auto a = workload::StressQueries(5, 10);
  const auto b = workload::StressQueries(5, 10);
  ASSERT_EQ(a.size(), 10u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].sql, b[i].sql);
    EXPECT_TRUE(a[i].description == "plain" || a[i].description == "aggregate");
  }
  const auto c = workload::StressQueries(6, 10);
  bool any_different = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].sql != c[i].sql) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

}  // namespace
}  // namespace aapac
