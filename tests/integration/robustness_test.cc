// Failure injection and fuzz-style robustness:
//  - the parser must reject arbitrary token soup without crashing;
//  - corrupted policy masks must fail closed (deny), never crash;
//  - the security corollary: rewritten non-aggregate queries only ever
//    return a sub-multiset of the original result;
//  - everything runs on empty tables.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>

#include "core/catalog.h"
#include "core/monitor.h"
#include "sql/parser.h"
#include "util/rng.h"
#include "workload/patients.h"
#include "workload/policies.h"
#include "workload/queries.h"

namespace aapac {
namespace {

using core::AccessControlCatalog;
using core::EnforcementMonitor;
using engine::Database;
using engine::Row;
using engine::Table;
using engine::Value;

std::vector<std::string> Stringify(const engine::ResultSet& rs) {
  std::vector<std::string> out;
  for (const Row& row : rs.rows) {
    std::string line;
    for (const Value& v : row) {
      line += v.ToString();
      line += "|";
    }
    out.push_back(std::move(line));
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// True iff `sub` is a sub-multiset of `super` (both sorted).
bool IsSubMultiset(const std::vector<std::string>& sub,
                   const std::vector<std::string>& super) {
  size_t j = 0;
  for (const std::string& s : sub) {
    while (j < super.size() && super[j] < s) ++j;
    if (j == super.size() || super[j] != s) return false;
    ++j;
  }
  return true;
}

TEST(ParserFuzzTest, RandomTokenSoupNeverCrashes) {
  static const char* kFragments[] = {
      "select", "from",  "where", "join",   "on",    "group", "by",
      "having", "order", "limit", "(",      ")",     ",",     "*",
      "+",      "-",     "/",     "=",      "<",     ">",     "'txt'",
      "42",     "3.14",  "users", "beats",  "and",   "or",    "not",
      "in",     "like",  "null",  "b'01'",  "avg",   ".",     ";",
      "between", "is",   "distinct", "as",  "insert", "into", "values"};
  Rng rng(2024);
  int parsed_ok = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    std::string soup;
    const int len = static_cast<int>(rng.NextInt(1, 18));
    for (int i = 0; i < len; ++i) {
      soup += kFragments[rng.NextIndex(std::size(kFragments))];
      soup += " ";
    }
    auto select = sql::ParseSelect(soup);
    auto statement = sql::ParseStatement(soup);
    if (select.ok()) ++parsed_ok;
    (void)statement;
  }
  // The vast majority of soups must be rejected gracefully.
  EXPECT_LT(parsed_ok, 300);
}

TEST(ParserFuzzTest, RandomBytesNeverCrash) {
  Rng rng(77);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string junk;
    const int len = static_cast<int>(rng.NextInt(0, 40));
    for (int i = 0; i < len; ++i) {
      junk += static_cast<char>(rng.NextInt(32, 126));
    }
    (void)sql::ParseSelect(junk);
    (void)sql::ParseStatement(junk);
  }
  SUCCEED();
}

class RobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>();
    workload::PatientsConfig config;
    config.num_patients = 20;
    config.samples_per_patient = 5;
    ASSERT_TRUE(workload::BuildPatientsDatabase(db_.get(), config).ok());
    catalog_ = std::make_unique<AccessControlCatalog>(db_.get());
    ASSERT_TRUE(catalog_->Initialize().ok());
    ASSERT_TRUE(workload::ConfigurePatientsAccessControl(catalog_.get()).ok());
    monitor_ = std::make_unique<EnforcementMonitor>(db_.get(), catalog_.get());
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<AccessControlCatalog> catalog_;
  std::unique_ptr<EnforcementMonitor> monitor_;
};

TEST_F(RobustnessTest, CorruptedPolicyMasksFailClosed) {
  workload::ScatteredPolicyConfig sp;
  sp.selectivity = 0.0;
  ASSERT_TRUE(workload::ApplyScatteredPolicies(catalog_.get(), sp).ok());
  // Flip random bytes in random policy masks of every table.
  Rng rng(31337);
  for (const char* table :
       {"users", "sensed_data", "nutritional_profiles"}) {
    Table* t = db_->FindTable(table);
    auto col = t->schema().FindColumn("policy");
    for (size_t i = 0; i < t->num_rows(); ++i) {
      if (!rng.NextBool(0.5)) continue;
      std::string bytes = t->row(i)[*col].AsBytes();
      switch (rng.NextIndex(4)) {
        case 0:  // Flip a byte.
          if (!bytes.empty()) {
            bytes[rng.NextIndex(bytes.size())] ^=
                static_cast<char>(1 << rng.NextIndex(8));
          }
          break;
        case 1:  // Truncate.
          bytes = bytes.substr(0, rng.NextIndex(bytes.size() + 1));
          break;
        case 2:  // Extend with junk.
          bytes += static_cast<char>(rng.NextInt(0, 255));
          break;
        case 3:  // Replace wholesale.
          bytes = std::string(rng.NextIndex(10), '\xFF');
          break;
      }
      t->mutable_row(i)[*col] = Value::Bytes(bytes);
    }
  }
  // Every query still executes; corrupt masks simply deny.
  for (const auto& q : workload::PaperQueries()) {
    auto rewritten = monitor_->ExecuteQuery(q.sql, "p3");
    ASSERT_TRUE(rewritten.ok()) << q.name << ": " << rewritten.status();
    auto original = monitor_->ExecuteUnrestricted(q.sql);
    ASSERT_TRUE(original.ok());
    EXPECT_LE(rewritten->rows.size(), original->rows.size()) << q.name;
  }
}

TEST_F(RobustnessTest, SecurityCorollaryRewrittenIsSubsetOfOriginal) {
  // Non-aggregate queries only: every rewritten result row must also be an
  // original result row (aggregates fold differently filtered inputs).
  static const char* kNonAggregateQueries[] = {
      "select distinct watch_id from sensed_data",
      "select user_id, temperature from users join sensed_data on "
      "users.watch_id=sensed_data.watch_id where sensed_data.temperature>37",
      "select user_id, watch_id from users where not watch_id like 'watch1'",
      "select profile_id, diet_type from nutritional_profiles",
      "select users.user_id, nutritional_profiles.diet_type from users join "
      "nutritional_profiles on "
      "users.nutritional_profile_id=nutritional_profiles.profile_id",
  };
  for (uint64_t seed : {1u, 2u, 3u}) {
    for (double selectivity : {0.2, 0.5, 0.8}) {
      workload::ScatteredPolicyConfig sp;
      sp.selectivity = selectivity;
      sp.seed = seed;
      ASSERT_TRUE(workload::ApplyScatteredPolicies(catalog_.get(), sp).ok());
      for (const char* sql : kNonAggregateQueries) {
        auto original = monitor_->ExecuteUnrestricted(sql);
        ASSERT_TRUE(original.ok()) << sql;
        auto rewritten = monitor_->ExecuteQuery(sql, "p4");
        ASSERT_TRUE(rewritten.ok()) << sql;
        EXPECT_TRUE(
            IsSubMultiset(Stringify(*rewritten), Stringify(*original)))
            << sql << " seed=" << seed << " s=" << selectivity;
      }
    }
  }
}

TEST_F(RobustnessTest, PushdownOnOffAgree) {
  workload::ScatteredPolicyConfig sp;
  sp.selectivity = 0.4;
  ASSERT_TRUE(workload::ApplyScatteredPolicies(catalog_.get(), sp).ok());
  std::vector<workload::BenchQuery> queries = workload::PaperQueries();
  for (auto& q : workload::RandomQueries(4)) queries.push_back(std::move(q));
  for (const auto& q : queries) {
    monitor_->SetPushdownEnabled(true);
    auto with = monitor_->ExecuteQuery(q.sql, "p3");
    ASSERT_TRUE(with.ok()) << q.name;
    monitor_->SetPushdownEnabled(false);
    auto without = monitor_->ExecuteQuery(q.sql, "p3");
    ASSERT_TRUE(without.ok()) << q.name;
    EXPECT_EQ(Stringify(*with), Stringify(*without)) << q.name;
    // Originals agree too.
    monitor_->SetPushdownEnabled(true);
    auto orig_with = monitor_->ExecuteUnrestricted(q.sql);
    monitor_->SetPushdownEnabled(false);
    auto orig_without = monitor_->ExecuteUnrestricted(q.sql);
    ASSERT_TRUE(orig_with.ok() && orig_without.ok()) << q.name;
    EXPECT_EQ(Stringify(*orig_with), Stringify(*orig_without)) << q.name;
  }
  monitor_->SetPushdownEnabled(true);
}

TEST(EmptyDatabaseTest, AllQueriesRunOnEmptyTables) {
  auto db = std::make_unique<Database>();
  workload::PatientsConfig config;
  config.num_patients = 0;
  config.samples_per_patient = 0;
  ASSERT_TRUE(workload::BuildPatientsDatabase(db.get(), config).ok());
  AccessControlCatalog catalog(db.get());
  ASSERT_TRUE(catalog.Initialize().ok());
  ASSERT_TRUE(workload::ConfigurePatientsAccessControl(&catalog).ok());
  EnforcementMonitor monitor(db.get(), &catalog);
  std::vector<workload::BenchQuery> queries = workload::PaperQueries();
  for (auto& q : workload::RandomQueries(9)) queries.push_back(std::move(q));
  for (const auto& q : queries) {
    auto original = monitor.ExecuteUnrestricted(q.sql);
    ASSERT_TRUE(original.ok()) << q.name << ": " << original.status();
    auto rewritten = monitor.ExecuteQuery(q.sql, "p1");
    ASSERT_TRUE(rewritten.ok()) << q.name << ": " << rewritten.status();
    EXPECT_EQ(monitor.compliance_checks(), 0u);
  }
}

}  // namespace
}  // namespace aapac
