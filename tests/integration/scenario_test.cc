// A full operational day, end to end: an administrator configures the
// secured database with the policy DSL and roles, several users work under
// different purposes (reads, inserts, updates), the audit trail records it
// all, and finally the database is archived and restored intact. Exercises
// the interaction of every major feature in one flow.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

#include "core/catalog.h"
#include "core/monitor.h"
#include "core/policy_manager.h"
#include "core/policy_parser.h"
#include "core/rbac.h"
#include "engine/snapshot.h"
#include "workload/patients.h"

namespace aapac {
namespace {

using core::AccessControlCatalog;
using core::EnforcementMonitor;
using core::PolicyManager;
using core::RoleManager;

TEST(ScenarioTest, AFullOperationalDay) {
  // --- Morning: administrator setup. ---------------------------------------
  auto db = std::make_unique<engine::Database>();
  workload::PatientsConfig config;
  config.num_patients = 12;
  config.samples_per_patient = 6;
  ASSERT_TRUE(workload::BuildPatientsDatabase(db.get(), config).ok());
  AccessControlCatalog catalog(db.get());
  ASSERT_TRUE(catalog.Initialize().ok());
  ASSERT_TRUE(workload::ConfigurePatientsAccessControl(&catalog).ok());

  RoleManager roles(&catalog);
  ASSERT_TRUE(roles.Initialize().ok());
  ASSERT_TRUE(roles.DefineRole("physician").ok());
  ASSERT_TRUE(roles.GrantPurposeToRole("physician", "p1").ok());
  ASSERT_TRUE(roles.GrantPurposeToRole("physician", "p3").ok());
  ASSERT_TRUE(roles.DefineRole("researcher").ok());
  ASSERT_TRUE(roles.GrantPurposeToRole("researcher", "p6").ok());
  ASSERT_TRUE(roles.AssignUserToRole("dr_grey", "physician").ok());
  ASSERT_TRUE(roles.AssignUserToRole("prof_oak", "researcher").ok());

  PolicyManager manager(&catalog);
  auto sensed_policy = core::ParsePolicyText(
      catalog, "sensed_data",
      "allow treatment, healthcare-operations direct single raw on * "
      "joint(all); "
      "allow research direct single aggregate on temperature, beats "
      "joint(q, s, g); "
      "allow treatment, healthcare-operations, research indirect on *");
  ASSERT_TRUE(sensed_policy.ok()) << sensed_policy.status();
  ASSERT_TRUE(manager.AttachToTable(*sensed_policy).ok());
  auto users_policy = core::ParsePolicyText(
      catalog, "users",
      "allow treatment direct single raw on * joint(all); "
      "allow treatment, research indirect on *");
  ASSERT_TRUE(users_policy.ok());
  ASSERT_TRUE(manager.AttachToTable(*users_policy).ok());

  EnforcementMonitor monitor(db.get(), &catalog);
  monitor.SetRoleManager(&roles);
  ASSERT_TRUE(monitor.EnableAuditLog().ok());

  // --- Day: users at work. ---------------------------------------------------
  // The physician reads raw vitals of a patient under treatment.
  auto rs = monitor.ExecuteQuery(
      "select temperature, beats from sensed_data where watch_id like "
      "'watch3'",
      "treatment", "dr_grey");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->rows.size(), 6u);

  // The researcher gets statistics but no raw rows and no user identities.
  rs = monitor.ExecuteQuery(
      "select avg(temperature), avg(beats) from sensed_data", "research",
      "prof_oak");
  ASSERT_TRUE(rs.ok()) << rs.status();
  ASSERT_EQ(rs->rows.size(), 1u);
  EXPECT_FALSE(rs->rows[0][0].is_null());
  rs = monitor.ExecuteQuery("select temperature from sensed_data",
                            "research", "prof_oak");
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(rs->rows.empty());
  rs = monitor.ExecuteQuery("select user_id from users", "research",
                            "prof_oak");
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(rs->rows.empty());

  // The researcher cannot act under treatment, nor can outsiders act at all.
  EXPECT_EQ(monitor
                .ExecuteQuery("select user_id from users", "treatment",
                              "prof_oak")
                .status()
                .code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(monitor
                .ExecuteQuery("select user_id from users", "treatment",
                              "intruder")
                .status()
                .code(),
            StatusCode::kPermissionDenied);

  // A new patient arrives: policy-carrying insert by the physician.
  auto new_user_policy = core::ParsePolicyText(
      catalog, "users",
      "allow treatment direct single raw on * joint(all); "
      "allow treatment indirect on *");
  ASSERT_TRUE(new_user_policy.ok());
  auto inserted = monitor.ExecuteInsert(
      "insert into users (user_id, watch_id, nutritional_profile_id) "
      "values ('user99', 'watch99', 'profile99')",
      "treatment", &*new_user_policy, "dr_grey");
  ASSERT_TRUE(inserted.ok()) << inserted.status();
  EXPECT_EQ(*inserted, 1u);

  // The physician reassigns the new patient's watch (enforced update).
  auto updated = monitor.ExecuteUpdate(
      "update users set watch_id = 'watch99b' where user_id like 'user99'",
      "treatment", "dr_grey");
  ASSERT_TRUE(updated.ok()) << updated.status();
  EXPECT_EQ(*updated, 1u);
  // The researcher cannot touch it.
  updated = monitor.ExecuteUpdate(
      "update users set watch_id = 'stolen' where user_id like 'user99'",
      "research", "prof_oak");
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(*updated, 0u);

  // --- Evening: audit review and archival. -----------------------------------
  auto audit = monitor.ExecuteUnrestricted(
      "select outcome, count(*) from audit_log group by outcome");
  ASSERT_TRUE(audit.ok());
  int64_t ok_count = 0;
  int64_t denied_count = 0;
  for (const auto& row : audit->rows) {
    if (row[0].AsString() == "ok") ok_count = row[1].AsInt();
    if (row[0].AsString() == "denied") denied_count = row[1].AsInt();
  }
  EXPECT_EQ(ok_count, 7);     // 4 queries + 1 insert + 2 updates.
  EXPECT_EQ(denied_count, 2);

  const std::string path =
      std::string(::testing::TempDir()) + "/scenario_snapshot.bin";
  ASSERT_TRUE(engine::SaveSnapshot(*db, path).ok());
  engine::Database restored;
  ASSERT_TRUE(engine::LoadSnapshot(&restored, path).ok());
  AccessControlCatalog restored_catalog(&restored);
  ASSERT_TRUE(restored_catalog.LoadFromMetadataTables().ok());
  EnforcementMonitor restored_monitor(&restored, &restored_catalog);
  // Purpose authorizations are durable (Pa); in-memory role assignments are
  // process state, so the restored site checks purposes directly.
  rs = restored_monitor.ExecuteQuery(
      "select avg(temperature) from sensed_data", "research");
  ASSERT_TRUE(rs.ok()) << rs.status();
  rs = restored_monitor.ExecuteQuery(
      "select user_id from users where user_id like 'user99'", "treatment");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 1u);  // The day's insert survived, policy too.
  // And the audit trail came along.
  audit = restored_monitor.ExecuteUnrestricted(
      "select count(*) from audit_log");
  ASSERT_TRUE(audit.ok());
  EXPECT_EQ(audit->rows[0][0].AsInt(), 9);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace aapac
