// Property tests for the paper's correctness theorems (§5.7, Appendix B):
//
//   Theorem 1 (Security): every tuple contributing to a rewritten query's
//   result has a policy complying with all of the query's action signatures
//   for its table.
//   Theorem 2 (Completeness): every tuple whose policy complies with all
//   relevant action signatures still contributes.
//
// Oracle: derive the query signature semantically, build a shadow database
// where each protected table is pre-filtered to its compliant tuples, run
// the *original* query there, and compare with the rewritten query on the
// policy-carrying database. Multiset equality of the result rows proves
// both directions at once. Policies are random well-formed rule sets (not
// just pass-all/pass-none), so the masks' subset logic is exercised in
// earnest.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>

#include "core/catalog.h"
#include "core/compliance.h"
#include "core/masks.h"
#include "core/monitor.h"
#include "core/signature_builder.h"
#include "sql/parser.h"
#include "util/rng.h"
#include "workload/patients.h"
#include "workload/queries.h"

namespace aapac {
namespace {

using core::AccessControlCatalog;
using core::ActionSignature;
using core::ActionType;
using core::Aggregation;
using core::JointAccess;
using core::Multiplicity;
using core::Policy;
using core::PolicyRule;
using core::QuerySignature;
using core::TableSignature;
using engine::Database;
using engine::Row;
using engine::Table;
using engine::Value;

/// Random well-formed policy for a table layout.
Policy RandomPolicy(Rng* rng, const std::string& table,
                    const core::MaskLayout& layout) {
  Policy policy;
  policy.table = table;
  const int n_rules = static_cast<int>(rng->NextInt(1, 3));
  for (int r = 0; r < n_rules; ++r) {
    PolicyRule rule;
    for (const auto& c : layout.columns()) {
      if (rng->NextBool(0.7)) rule.columns.insert(c);
    }
    if (rule.columns.empty()) rule.columns.insert(layout.columns()[0]);
    for (const auto& p : layout.purposes()) {
      if (rng->NextBool(0.5)) rule.purposes.insert(p);
    }
    if (rule.purposes.empty()) rule.purposes.insert(layout.purposes()[0]);
    if (rng->NextBool(0.35)) {
      rule.action_type = ActionType::Indirect(
          JointAccess{rng->NextBool(0.7), rng->NextBool(0.7),
                      rng->NextBool(0.7), rng->NextBool(0.7)});
    } else {
      rule.action_type = ActionType::Direct(
          rng->NextBool() ? Multiplicity::kSingle : Multiplicity::kMultiple,
          rng->NextBool() ? Aggregation::kAggregation
                          : Aggregation::kNoAggregation,
          JointAccess{rng->NextBool(0.7), rng->NextBool(0.7),
                      rng->NextBool(0.7), rng->NextBool(0.7)});
    }
    policy.rules.push_back(std::move(rule));
  }
  return policy;
}

std::vector<std::string> Stringify(const engine::ResultSet& rs) {
  std::vector<std::string> out;
  out.reserve(rs.rows.size());
  for (const Row& row : rs.rows) {
    std::string line;
    for (const Value& v : row) {
      line += v.ToString();
      line += "|";
    }
    out.push_back(std::move(line));
  }
  std::sort(out.begin(), out.end());
  return out;
}

class TheoremsTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TheoremsTest, RewrittenResultEqualsOracle) {
  Rng rng(GetParam());

  // Policy-carrying world.
  auto db = std::make_unique<Database>();
  workload::PatientsConfig config;
  config.num_patients = 30;
  config.samples_per_patient = 8;
  config.seed = GetParam();
  ASSERT_TRUE(workload::BuildPatientsDatabase(db.get(), config).ok());
  AccessControlCatalog catalog(db.get());
  ASSERT_TRUE(catalog.Initialize().ok());
  ASSERT_TRUE(workload::ConfigurePatientsAccessControl(&catalog).ok());

  // Shadow world without access control: same data (same seed).
  auto shadow = std::make_unique<Database>();
  ASSERT_TRUE(workload::BuildPatientsDatabase(shadow.get(), config).ok());

  // Random per-tuple policies; remember each tuple's Policy object.
  const char* kTables[] = {"users", "sensed_data", "nutritional_profiles"};
  std::map<std::string, std::vector<Policy>> tuple_policies;
  for (const char* table : kTables) {
    auto layout = catalog.LayoutFor(table);
    ASSERT_TRUE(layout.ok());
    Table* t = db->FindTable(table);
    auto policy_col = t->schema().FindColumn("policy");
    ASSERT_TRUE(policy_col.has_value());
    auto& policies = tuple_policies[table];
    for (size_t i = 0; i < t->num_rows(); ++i) {
      Policy policy = RandomPolicy(&rng, table, *layout);
      auto mask = layout->EncodePolicy(policy);
      ASSERT_TRUE(mask.ok());
      t->mutable_row(i)[*policy_col] = Value::Bytes(mask->ToBytes());
      policies.push_back(std::move(policy));
    }
  }

  core::EnforcementMonitor monitor(db.get(), &catalog);
  engine::Executor shadow_exec(shadow.get());
  core::SignatureBuilder builder(&catalog);

  std::vector<workload::BenchQuery> queries = workload::PaperQueries();
  for (auto& q : workload::RandomQueries(GetParam() * 31 + 1)) {
    queries.push_back(std::move(q));
  }

  for (const auto& q : queries) {
    std::string purpose = "p";
    purpose += std::to_string(rng.NextInt(1, 8));
    auto stmt = sql::ParseSelect(q.sql);
    ASSERT_TRUE(stmt.ok()) << q.name;
    auto qs = builder.Derive(**stmt, purpose, q.sql);
    ASSERT_TRUE(qs.ok()) << q.name << ": " << qs.status();

    // Collect, per table, all action signatures across nesting levels
    // (each table appears at exactly one level in these queries).
    std::map<std::string, std::vector<const ActionSignature*>> per_table;
    std::vector<const QuerySignature*> stack = {qs->get()};
    while (!stack.empty()) {
      const QuerySignature* cur = stack.back();
      stack.pop_back();
      for (const TableSignature& ts : cur->tables) {
        for (const ActionSignature& as : ts.actions) {
          per_table[ts.table].push_back(&as);
        }
      }
      for (const auto& sub : cur->subqueries) stack.push_back(sub.get());
    }

    // Build the oracle world: shadow tables filtered to compliant tuples.
    for (const char* table : kTables) {
      Table* policy_table = db->FindTable(table);
      Table* shadow_table = shadow->FindTable(table);
      shadow_table->Clear();
      const auto& policies = tuple_policies[table];
      const auto& signatures = per_table[table];
      for (size_t i = 0; i < policies.size(); ++i) {
        bool compliant = true;
        for (const ActionSignature* as : signatures) {
          if (!core::SignaturePolicyComplies(*as, purpose, policies[i])) {
            compliant = false;
            break;
          }
        }
        if (!compliant) continue;
        // Copy the row without the policy column (shadow lacks it).
        Row row = policy_table->row(i);
        row.pop_back();
        shadow_table->InsertUnchecked(std::move(row));
      }
    }

    auto rewritten = monitor.ExecuteQuery(q.sql, purpose);
    ASSERT_TRUE(rewritten.ok()) << q.name << ": " << rewritten.status();
    auto oracle = shadow_exec.ExecuteSql(q.sql);
    ASSERT_TRUE(oracle.ok()) << q.name << ": " << oracle.status();
    EXPECT_EQ(Stringify(*rewritten), Stringify(*oracle))
        << q.name << " purpose=" << purpose << "\nsql: " << q.sql;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TheoremsTest,
                         ::testing::Values(1, 2, 3, 17, 101));

}  // namespace
}  // namespace aapac
