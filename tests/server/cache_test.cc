// RewriteCache behaviour through the server: hit/miss accounting, key
// normalization, per-purpose keying, LRU eviction, and — the security
// property — version-based invalidation on catalog/policy mutations so a
// stale rewrite is never served.

#include "server/rewrite_cache.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/catalog.h"
#include "core/monitor.h"
#include "engine/database.h"
#include "server/server.h"
#include "workload/patients.h"
#include "workload/policies.h"

namespace aapac::server {
namespace {

TEST(NormalizeSqlTest, LowercasesAndCollapsesWhitespace) {
  EXPECT_EQ(RewriteCache::NormalizeSql("  SELECT   A\tFROM\n T  "),
            "select a from t");
  EXPECT_EQ(RewriteCache::NormalizeSql("select a from t"),
            RewriteCache::NormalizeSql("SELECT  a  FROM  t"));
}

TEST(NormalizeSqlTest, QuotedLiteralContentsStayVerbatim) {
  // The lexer is case- and whitespace-sensitive inside string literals, so
  // queries differing only there are different queries — they must not
  // share a cache key.
  EXPECT_NE(RewriteCache::NormalizeSql("select a from t where n = 'Alice'"),
            RewriteCache::NormalizeSql("select a from t where n = 'alice'"));
  EXPECT_NE(RewriteCache::NormalizeSql("select a from t where n = 'a b'"),
            RewriteCache::NormalizeSql("select a from t where n = 'a  b'"));
  EXPECT_EQ(RewriteCache::NormalizeSql("SELECT A FROM T WHERE n = 'A  b'"),
            "select a from t where n = 'A  b'");
  // The '' escape keeps the scanner inside the literal; text after the
  // closing quote is normalized again.
  EXPECT_EQ(RewriteCache::NormalizeSql("SELECT 'It''s  A'  FROM  T"),
            "select 'It''s  A' from t");
  // b'...' bit literals: the prefix may lowercase, the payload not.
  EXPECT_EQ(RewriteCache::NormalizeSql("SELECT B'0101'  FROM  T"),
            "select b'0101' from t");
}

TEST(RewriteCacheTest, LruEvictionAtCapacity) {
  RewriteCache cache(/*capacity=*/2);
  auto entry = [] {
    auto e = std::make_shared<RewriteCache::Entry>();
    e->version = 7;
    return e;
  };
  cache.Insert("q1", "p1", "", entry());
  cache.Insert("q2", "p1", "", entry());
  EXPECT_NE(cache.Lookup("q1", "p1", "", 7), nullptr);  // q1 now MRU.
  cache.Insert("q3", "p1", "", entry());                // Evicts q2.
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_NE(cache.Lookup("q1", "p1", "", 7), nullptr);
  EXPECT_EQ(cache.Lookup("q2", "p1", "", 7), nullptr);
  EXPECT_NE(cache.Lookup("q3", "p1", "", 7), nullptr);
}

TEST(RewriteCacheTest, StaleVersionIsInvalidatedOnLookup) {
  RewriteCache cache;
  auto e = std::make_shared<RewriteCache::Entry>();
  e->version = 1;
  cache.Insert("q", "p1", "", e);
  EXPECT_EQ(cache.Lookup("q", "p1", "", 2), nullptr);
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(cache.size(), 0u);  // The stale entry is dropped eagerly.
}

TEST(RewriteCacheTest, ZeroCapacityDisablesMemoization) {
  RewriteCache cache(/*capacity=*/0);
  auto e = std::make_shared<RewriteCache::Entry>();
  e->version = 1;
  cache.Insert("q", "p1", "", e);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Lookup("q", "p1", "", 1), nullptr);
}

class ServerCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<engine::Database>();
    workload::PatientsConfig config;
    config.num_patients = 10;
    config.samples_per_patient = 4;
    ASSERT_TRUE(workload::BuildPatientsDatabase(db_.get(), config).ok());
    catalog_ = std::make_unique<core::AccessControlCatalog>(db_.get());
    ASSERT_TRUE(catalog_->Initialize().ok());
    ASSERT_TRUE(
        workload::ConfigurePatientsAccessControl(catalog_.get()).ok());
    ApplySelectivity(0.0);  // Everything complies.
    monitor_ = std::make_unique<core::EnforcementMonitor>(db_.get(),
                                                          catalog_.get());
    ServerOptions options;
    options.threads = 1;
    server_ = std::make_unique<EnforcementServer>(monitor_.get(), options);
    auto sid = server_->OpenSession("", "p3");
    ASSERT_TRUE(sid.ok()) << sid.status();
    sid_ = *sid;
  }

  void ApplySelectivity(double selectivity) {
    workload::ScatteredPolicyConfig sp;
    sp.selectivity = selectivity;
    ASSERT_TRUE(workload::ApplyScatteredPolicies(catalog_.get(), sp).ok());
  }

  std::unique_ptr<engine::Database> db_;
  std::unique_ptr<core::AccessControlCatalog> catalog_;
  std::unique_ptr<core::EnforcementMonitor> monitor_;
  std::unique_ptr<EnforcementServer> server_;
  SessionId sid_ = 0;
};

TEST_F(ServerCacheTest, RepeatedQueryHitsAfterFirstMiss) {
  const std::string sql = "select user_id from users";
  ASSERT_TRUE(server_->Execute(sid_, sql).ok());
  EXPECT_EQ(server_->cache_stats().misses, 1u);
  EXPECT_EQ(server_->cache_stats().hits, 0u);
  ASSERT_TRUE(server_->Execute(sid_, sql).ok());
  ASSERT_TRUE(server_->Execute(sid_, sql).ok());
  EXPECT_EQ(server_->cache_stats().misses, 1u);
  EXPECT_EQ(server_->cache_stats().hits, 2u);
}

TEST_F(ServerCacheTest, NormalizationVariantsShareOneEntry) {
  ASSERT_TRUE(server_->Execute(sid_, "select user_id from users").ok());
  ASSERT_TRUE(server_->Execute(sid_, "SELECT   user_id\tFROM  users ").ok());
  EXPECT_EQ(server_->cache_stats().misses, 1u);
  EXPECT_EQ(server_->cache_stats().hits, 1u);
}

TEST_F(ServerCacheTest, LiteralsDifferingOnlyInCaseAreDistinctEntries) {
  auto lower = server_->Execute(
      sid_, "select user_id from users where user_id = 'user1'");
  ASSERT_TRUE(lower.ok()) << lower.status();
  EXPECT_EQ(lower->rows.size(), 1u);
  // Same query up to literal case: a different query with different results;
  // serving the cached rewrite of the first would be a correctness bug.
  auto upper = server_->Execute(
      sid_, "select user_id from users where user_id = 'USER1'");
  ASSERT_TRUE(upper.ok()) << upper.status();
  EXPECT_EQ(upper->rows.size(), 0u);
  EXPECT_EQ(server_->cache_stats().misses, 2u);
  EXPECT_EQ(server_->cache_stats().hits, 0u);
}

TEST_F(ServerCacheTest, DifferentPurposesGetSeparateEntries) {
  auto other = server_->OpenSession("", "p1");
  ASSERT_TRUE(other.ok()) << other.status();
  const std::string sql = "select user_id from users";
  ASSERT_TRUE(server_->Execute(sid_, sql).ok());
  ASSERT_TRUE(server_->Execute(*other, sql).ok());
  // Same text, different declared purposes: two distinct rewrites.
  EXPECT_EQ(server_->cache_stats().misses, 2u);
  EXPECT_EQ(server_->cache_stats().hits, 0u);
  EXPECT_EQ(server_->cache().size(), 2u);
}

TEST_F(ServerCacheTest, CatalogMutationInvalidatesCachedRewrites) {
  const std::string sql = "select user_id from users";
  ASSERT_TRUE(server_->Execute(sid_, sql).ok());
  ASSERT_TRUE(server_->Execute(sid_, sql).ok());
  EXPECT_EQ(server_->cache_stats().hits, 1u);

  ASSERT_TRUE(server_
                  ->WithExclusive(
                      [&] { return catalog_->AuthorizeUser("alice", "p3"); })
                  .ok());
  ASSERT_TRUE(server_->Execute(sid_, sql).ok());
  EXPECT_EQ(server_->cache_stats().invalidations, 1u);
  EXPECT_EQ(server_->cache_stats().misses, 2u);
  // The fresh entry serves again.
  ASSERT_TRUE(server_->Execute(sid_, sql).ok());
  EXPECT_EQ(server_->cache_stats().hits, 2u);
}

TEST_F(ServerCacheTest, PolicyMutationIsNeverServedStaleResults) {
  const std::string sql = "select user_id from users";
  auto before = server_->Execute(sid_, sql);
  ASSERT_TRUE(before.ok()) << before.status();
  EXPECT_EQ(before->rows.size(), 10u);  // Selectivity 0: all rows comply.

  // Flip to selectivity 1 (no tuple complies) while the server is live.
  ASSERT_TRUE(server_
                  ->WithExclusive([&] {
                    workload::ScatteredPolicyConfig sp;
                    sp.selectivity = 1.0;
                    return workload::ApplyScatteredPolicies(catalog_.get(),
                                                            sp);
                  })
                  .ok());
  auto after = server_->Execute(sid_, sql);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(after->rows.size(), 0u)
      << "a cached pre-mutation rewrite must not be served";
  EXPECT_GE(server_->cache_stats().invalidations, 1u);
}

}  // namespace
}  // namespace aapac::server
