// Server-side observability: under concurrent load every one of the nine
// pipeline stage histograms records samples (the morsel stages require a
// parallel-eligible query, so the load runs with query_threads > 1 and a
// small morsel size), Snapshot() reports consistent queue/lock/cache
// figures, and a served statement's trace carries the server-only spans
// (queue wait, lock wait, cache lookup).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/catalog.h"
#include "core/monitor.h"
#include "engine/database.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/server.h"
#include "workload/patients.h"
#include "workload/policies.h"
#include "workload/queries.h"

namespace aapac::server {
namespace {

struct Instance {
  std::unique_ptr<engine::Database> db;
  std::unique_ptr<core::AccessControlCatalog> catalog;
  std::unique_ptr<core::EnforcementMonitor> monitor;
};

Instance MakeInstance() {
  Instance inst;
  inst.db = std::make_unique<engine::Database>();
  workload::PatientsConfig config;
  config.num_patients = 20;
  config.samples_per_patient = 5;
  EXPECT_TRUE(workload::BuildPatientsDatabase(inst.db.get(), config).ok());
  inst.catalog = std::make_unique<core::AccessControlCatalog>(inst.db.get());
  EXPECT_TRUE(inst.catalog->Initialize().ok());
  EXPECT_TRUE(
      workload::ConfigurePatientsAccessControl(inst.catalog.get()).ok());
  workload::ScatteredPolicyConfig sp;
  sp.selectivity = 0.2;
  EXPECT_TRUE(workload::ApplyScatteredPolicies(inst.catalog.get(), sp).ok());
  inst.monitor = std::make_unique<core::EnforcementMonitor>(
      inst.db.get(), inst.catalog.get());
  return inst;
}

TEST(ServerObsTest, AllNineStageHistogramsFillUnderConcurrentLoad) {
  if (!obs::kObsCompiledIn) GTEST_SKIP() << "built with AAPAC_OBS_OFF";
  Instance inst = MakeInstance();
  ServerOptions options;
  options.threads = 4;
  // Morsel stages fill only when a scan fans out; with 100-row tables the
  // morsel size must shrink below half the table for that to happen.
  options.query_threads = 2;
  options.morsel_rows = 16;
  EnforcementServer server(inst.monitor.get(), options);
  const std::vector<workload::BenchQuery> queries = workload::PaperQueries();

  const size_t kClients = 4;
  const size_t kRounds = 2;
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      auto sid = server.OpenSession("", "p3");
      ASSERT_TRUE(sid.ok());
      for (size_t r = 0; r < kRounds; ++r) {
        for (const auto& q : queries) {
          auto rs = server.Execute(*sid, q.sql);
          EXPECT_TRUE(rs.ok()) << q.name << ": " << rs.status();
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  obs::MetricsRegistry* reg = inst.monitor->metrics().get();
  for (const char* stage : obs::kPipelineStages) {
    EXPECT_GT(reg->histogram(stage)->count(), 0u)
        << stage << " recorded no samples";
  }

  const ServerSnapshot snap = server.Snapshot();
  const uint64_t total = kClients * kRounds * queries.size();
  EXPECT_EQ(snap.executed, total);
  EXPECT_EQ(snap.rejected, 0u);
  EXPECT_EQ(snap.queue_depth, 0u);
  EXPECT_GE(snap.queue_depth_hwm, 1);
  // Every enforced select takes the data lock in shared mode.
  EXPECT_GE(snap.lock_shared, total);
  EXPECT_EQ(snap.sessions_active, kClients);
  EXPECT_EQ(snap.cache.hits + snap.cache.misses, total);
}

TEST(ServerObsTest, ServedStatementTraceCarriesServerSpans) {
  if (!obs::kObsCompiledIn) GTEST_SKIP() << "built with AAPAC_OBS_OFF";
  Instance inst = MakeInstance();
  ServerOptions options;
  options.threads = 1;
  EnforcementServer server(inst.monitor.get(), options);
  auto sid = server.OpenSession("", "p3");
  ASSERT_TRUE(sid.ok());
  const std::string sql = "select watch_id from sensed_data";
  ASSERT_TRUE(server.Execute(*sid, sql).ok());

  auto rec = inst.monitor->traces()->Last();
  ASSERT_TRUE(rec.ok()) << rec.status();
  EXPECT_EQ(rec->sql, sql);
  EXPECT_EQ(rec->outcome, "ok");
  bool saw_queue = false, saw_lock = false, saw_lookup = false,
       saw_execute = false;
  for (const auto& span : rec->spans) {
    const std::string stage = span.stage;
    saw_queue |= stage == obs::kStageQueueWait;
    saw_lock |= stage == obs::kStageLockWait;
    saw_lookup |= stage == obs::kStageCacheLookup;
    saw_execute |= stage == obs::kStageExecute;
  }
  EXPECT_TRUE(saw_queue);
  EXPECT_TRUE(saw_lock);
  EXPECT_TRUE(saw_lookup);
  EXPECT_TRUE(saw_execute);
}

TEST(ServerObsTest, SnapshotCountsExclusiveAcquisitionsForDml) {
  Instance inst = MakeInstance();
  ServerOptions options;
  options.threads = 2;
  EnforcementServer server(inst.monitor.get(), options);
  auto sid = server.OpenSession("", "p1");
  ASSERT_TRUE(sid.ok());
  const uint64_t before = server.Snapshot().lock_exclusive;
  auto n = server.ExecuteInsert(*sid, "insert into pr values ('p9', 'x')");
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_GT(server.Snapshot().lock_exclusive, before);
}

}  // namespace
}  // namespace aapac::server
