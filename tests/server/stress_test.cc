// Multi-threaded stress tests of the enforcement service: concurrent
// results must be byte-identical to the single-threaded monitor's, a
// mid-run policy mutation must never leak a stale rewrite, and audit
// sequence numbers must stay dense and distinct under concurrency.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/catalog.h"
#include "core/monitor.h"
#include "engine/database.h"
#include "server/server.h"
#include "workload/patients.h"
#include "workload/policies.h"
#include "workload/queries.h"

namespace aapac::server {
namespace {

/// Exact serialization (column names + rows in execution order): the
/// concurrent path must reproduce the single-threaded results byte for
/// byte, ordering included.
std::string Serialize(const engine::ResultSet& rs) {
  std::string out;
  for (const auto& c : rs.column_names) {
    out += c;
    out += ',';
  }
  out += '\n';
  for (const auto& row : rs.rows) {
    for (const auto& v : row) {
      out += v.ToString();
      out += '|';
    }
    out += '\n';
  }
  return out;
}

/// One self-contained patients scenario; identical seeds produce identical
/// databases and policy masks, making scenarios comparable across
/// instances.
struct Instance {
  std::unique_ptr<engine::Database> db;
  std::unique_ptr<core::AccessControlCatalog> catalog;
  std::unique_ptr<core::EnforcementMonitor> monitor;

  void ApplySelectivity(double selectivity) {
    workload::ScatteredPolicyConfig sp;
    sp.selectivity = selectivity;
    ASSERT_TRUE(workload::ApplyScatteredPolicies(catalog.get(), sp).ok());
  }
};

Instance MakeInstance(double selectivity) {
  Instance inst;
  inst.db = std::make_unique<engine::Database>();
  workload::PatientsConfig config;
  config.num_patients = 30;
  config.samples_per_patient = 8;
  EXPECT_TRUE(workload::BuildPatientsDatabase(inst.db.get(), config).ok());
  inst.catalog =
      std::make_unique<core::AccessControlCatalog>(inst.db.get());
  EXPECT_TRUE(inst.catalog->Initialize().ok());
  EXPECT_TRUE(
      workload::ConfigurePatientsAccessControl(inst.catalog.get()).ok());
  inst.ApplySelectivity(selectivity);
  inst.monitor = std::make_unique<core::EnforcementMonitor>(
      inst.db.get(), inst.catalog.get());
  return inst;
}

TEST(ServerStressTest, ConcurrentResultsMatchSingleThreaded) {
  Instance reference = MakeInstance(0.2);
  Instance serving = MakeInstance(0.2);
  const std::vector<workload::BenchQuery> queries = workload::PaperQueries();

  std::map<std::string, std::string> expected;
  for (const auto& q : queries) {
    auto rs = reference.monitor->ExecuteQuery(q.sql, "p3");
    ASSERT_TRUE(rs.ok()) << q.name << ": " << rs.status();
    expected[q.name] = Serialize(*rs);
  }

  ServerOptions options;
  options.threads = 4;
  EnforcementServer server(serving.monitor.get(), options);

  // Warm the cache single-threaded so the concurrent rounds are pure hits:
  // two clients racing the same cold miss would each prepare and insert,
  // which skews the hit/miss counters on slow builds (e.g. under TSan).
  {
    auto sid = server.OpenSession("", "p3");
    ASSERT_TRUE(sid.ok()) << sid.status();
    for (const auto& q : queries) {
      auto rs = server.Execute(*sid, q.sql);
      ASSERT_TRUE(rs.ok()) << q.name << ": " << rs.status();
    }
  }
  ASSERT_EQ(server.cache_stats().misses, queries.size());

  const size_t kClients = 4;
  const size_t kRounds = 3;
  std::mutex failures_mu;
  std::vector<std::string> failures;
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      auto sid = server.OpenSession("", "p3");
      if (!sid.ok()) {
        std::lock_guard<std::mutex> lock(failures_mu);
        failures.push_back("open: " + sid.status().ToString());
        return;
      }
      for (size_t r = 0; r < kRounds; ++r) {
        for (const auto& q : queries) {
          auto rs = server.Execute(*sid, q.sql);
          std::string problem;
          if (!rs.ok()) {
            problem = q.name + ": " + rs.status().ToString();
          } else if (Serialize(*rs) != expected[q.name]) {
            problem = q.name + ": result differs from single-threaded run";
          }
          if (!problem.empty()) {
            std::lock_guard<std::mutex> lock(failures_mu);
            failures.push_back(std::move(problem));
          }
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_TRUE(failures.empty()) << failures.front() << " ("
                                << failures.size() << " failures)";
  EXPECT_EQ(server.executed_total(), (kClients * kRounds + 1) * queries.size());
  // Repeated identical queries across clients must be served from cache:
  // after the warm-up, every concurrent execution is a hit.
  EXPECT_EQ(server.cache_stats().misses, queries.size());
  EXPECT_EQ(server.cache_stats().hits, kClients * kRounds * queries.size());
  EXPECT_GE(server.cache_stats().hit_rate(), 0.9);
}

TEST(ServerStressTest, MidRunMutationYieldsFreshResults) {
  Instance serving = MakeInstance(0.2);
  // The reference replays the same mutation history: 0.2 then 0.6.
  Instance reference = MakeInstance(0.2);
  reference.ApplySelectivity(0.6);
  const std::vector<workload::BenchQuery> queries = workload::PaperQueries();

  ServerOptions options;
  options.threads = 2;
  EnforcementServer server(serving.monitor.get(), options);
  auto sid = server.OpenSession("", "p3");
  ASSERT_TRUE(sid.ok());

  // Populate the cache under the pre-mutation catalog.
  for (const auto& q : queries) {
    ASSERT_TRUE(server.Execute(*sid, q.sql).ok()) << q.name;
  }
  const uint64_t misses_before = server.cache_stats().misses;

  ASSERT_TRUE(server
                  .WithExclusive([&] {
                    workload::ScatteredPolicyConfig sp;
                    sp.selectivity = 0.6;
                    return workload::ApplyScatteredPolicies(
                        serving.catalog.get(), sp);
                  })
                  .ok());

  for (const auto& q : queries) {
    auto fresh = reference.monitor->ExecuteQuery(q.sql, "p3");
    ASSERT_TRUE(fresh.ok()) << q.name << ": " << fresh.status();
    auto served = server.Execute(*sid, q.sql);
    ASSERT_TRUE(served.ok()) << q.name << ": " << served.status();
    EXPECT_EQ(Serialize(*served), Serialize(*fresh))
        << q.name << ": server result does not match a fresh single-threaded"
        << " run after the policy mutation";
  }
  // Every post-mutation query re-derived its rewrite.
  EXPECT_GE(server.cache_stats().invalidations, queries.size());
  EXPECT_EQ(server.cache_stats().misses, misses_before + queries.size());
}

TEST(ServerStressTest, AuditSequenceNumbersAreDenseUnderConcurrency) {
  Instance serving = MakeInstance(0.0);
  ASSERT_TRUE(serving.monitor->EnableAuditLog().ok());

  ServerOptions options;
  options.threads = 4;
  EnforcementServer server(serving.monitor.get(), options);

  const size_t kClients = 4;
  const size_t kQueriesEach = 8;
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      auto sid = server.OpenSession("", "p3");
      ASSERT_TRUE(sid.ok());
      for (size_t i = 0; i < kQueriesEach; ++i) {
        auto rs = server.Execute(*sid, "select count(*) from sensed_data");
        EXPECT_TRUE(rs.ok()) << rs.status();
      }
    });
  }
  for (auto& t : clients) t.join();
  server.Shutdown();

  auto audit =
      serving.monitor->ExecuteUnrestricted("select seq from audit_log");
  ASSERT_TRUE(audit.ok()) << audit.status();
  const size_t total = kClients * kQueriesEach;
  ASSERT_EQ(audit->rows.size(), total);
  std::set<int64_t> seqs;
  int64_t max_seq = 0;
  for (const auto& row : audit->rows) {
    const int64_t seq = row[0].AsInt();
    seqs.insert(seq);
    if (seq > max_seq) max_seq = seq;
  }
  // Distinct and dense 1..N: the racy read-modify-write would duplicate
  // (and thus skip) sequence numbers.
  EXPECT_EQ(seqs.size(), total);
  EXPECT_EQ(*seqs.begin(), 1);
  EXPECT_EQ(max_seq, static_cast<int64_t>(total));
}

TEST(ServerStressTest, AuditReadsDoNotRaceConcurrentAppends) {
  Instance serving = MakeInstance(0.0);
  ASSERT_TRUE(serving.monitor->EnableAuditLog().ok());

  ServerOptions options;
  options.threads = 4;
  EnforcementServer server(serving.monitor.get(), options);

  const size_t kWriters = 3;
  const size_t kQueriesEach = 12;
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kWriters; ++c) {
    clients.emplace_back([&] {
      auto sid = server.OpenSession("", "p3");
      ASSERT_TRUE(sid.ok());
      for (size_t i = 0; i < kQueriesEach; ++i) {
        auto rs = server.Execute(*sid, "select count(*) from sensed_data");
        EXPECT_TRUE(rs.ok()) << rs.status();
      }
    });
  }
  // A concurrent auditor scans the audit trail through the server while the
  // writers above append to it. The scan must be routed to the exclusive
  // side of the data lock (regression: under the shared lock it raced the
  // appends' row-vector growth — crashes/TSan reports).
  clients.emplace_back([&] {
    auto sid = server.OpenSession("", "p3");
    ASSERT_TRUE(sid.ok());
    size_t last = 0;
    for (size_t i = 0; i < kQueriesEach; ++i) {
      auto rs = server.Execute(*sid, "select seq from audit_log");
      ASSERT_TRUE(rs.ok()) << rs.status();
      // Monotone growth: each scan sees at least what the previous one saw.
      EXPECT_GE(rs->rows.size(), last);
      last = rs->rows.size();
    }
  });
  for (auto& t : clients) t.join();
}

TEST(ServerStressTest, AuditCheckCountsArePerQueryUnderConcurrency) {
  // Measure the query's check cost single-threaded on an identical instance.
  Instance reference = MakeInstance(0.2);
  const std::string sql = "select watch_id from sensed_data";
  reference.monitor->ResetComplianceChecks();
  ASSERT_TRUE(reference.monitor->ExecuteQuery(sql, "p3").ok());
  const uint64_t expected = reference.monitor->compliance_checks();
  ASSERT_GT(expected, 0u);

  Instance serving = MakeInstance(0.2);
  ASSERT_TRUE(serving.monitor->EnableAuditLog().ok());
  ServerOptions options;
  options.threads = 4;
  EnforcementServer server(serving.monitor.get(), options);

  const size_t kClients = 4;
  const size_t kQueriesEach = 6;
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      auto sid = server.OpenSession("", "p3");
      ASSERT_TRUE(sid.ok());
      for (size_t i = 0; i < kQueriesEach; ++i) {
        auto rs = server.Execute(*sid, sql);
        EXPECT_TRUE(rs.ok()) << rs.status();
      }
    });
  }
  for (auto& t : clients) t.join();
  server.Shutdown();

  auto audit =
      serving.monitor->ExecuteUnrestricted("select checks from audit_log");
  ASSERT_TRUE(audit.ok()) << audit.status();
  ASSERT_EQ(audit->rows.size(), kClients * kQueriesEach);
  for (const auto& row : audit->rows) {
    // Regression: diffing the shared global counter folded other in-flight
    // queries' checks into each audit row under concurrency.
    EXPECT_EQ(row[0].AsInt(), static_cast<int64_t>(expected))
        << "audit 'checks' must count only the query's own complies_with "
           "calls";
  }
}

}  // namespace
}  // namespace aapac::server
