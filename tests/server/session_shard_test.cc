// Sharded SessionManager at scale: a million sessions opened from many
// threads stay individually addressable, counts stay exact, and ids are
// never reused or dropped across shards.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "server/session.h"

namespace aapac::server {
namespace {

TEST(SessionShardTest, MillionSessionsAcrossThreads) {
  SessionManager mgr(/*shards=*/64);
  ASSERT_EQ(mgr.num_shards(), 64u);
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 125'000;  // 1M total.

  std::vector<std::vector<SessionId>> ids(kThreads);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ids[t].reserve(kPerThread);
      for (size_t i = 0; i < kPerThread; ++i) {
        ids[t].push_back(mgr.Open("user" + std::to_string(t), "p3", ""));
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(mgr.active(), kThreads * kPerThread);
  EXPECT_EQ(mgr.opened_total(), kThreads * kPerThread);

  // Every session is addressable and carries its opener's context.
  for (size_t t = 0; t < kThreads; ++t) {
    auto info = mgr.Get(ids[t][kPerThread / 2]);
    ASSERT_TRUE(info.ok());
    EXPECT_EQ(info->user, "user" + std::to_string(t));
    EXPECT_EQ(info->purpose_id, "p3");
  }

  // Concurrent close of everything: counts drain to zero exactly.
  threads.clear();
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (SessionId id : ids[t]) {
        EXPECT_TRUE(mgr.Close(id).ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mgr.active(), 0u);
  // opened_total is monotone — closes don't rewind it.
  EXPECT_EQ(mgr.opened_total(), kThreads * kPerThread);
  EXPECT_FALSE(mgr.Get(ids[0][0]).ok());
}

TEST(SessionShardTest, IdsAreDistinctAndDenseUnderConcurrency) {
  SessionManager mgr(/*shards=*/8);
  constexpr size_t kThreads = 4;
  constexpr size_t kPerThread = 10'000;
  std::vector<std::vector<SessionId>> ids(kThreads);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ids[t].reserve(kPerThread);
      for (size_t i = 0; i < kPerThread; ++i) {
        ids[t].push_back(mgr.Open("u", "p1", ""));
      }
    });
  }
  for (auto& th : threads) th.join();
  std::vector<bool> seen(kThreads * kPerThread + 1, false);
  for (const auto& per_thread : ids) {
    for (SessionId id : per_thread) {
      ASSERT_GE(id, 1u);
      ASSERT_LE(id, kThreads * kPerThread);
      ASSERT_FALSE(seen[id]) << "duplicate session id " << id;
      seen[id] = true;
    }
  }
}

TEST(SessionShardTest, ZeroShardRequestClampsToOne) {
  SessionManager mgr(/*shards=*/0);
  EXPECT_EQ(mgr.num_shards(), 1u);
  const SessionId id = mgr.Open("u", "p1", "");
  EXPECT_TRUE(mgr.Get(id).ok());
}

}  // namespace
}  // namespace aapac::server
