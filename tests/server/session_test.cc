// Session lifecycle of the concurrent enforcement service: purpose
// resolution and user authorization at OpenSession, close semantics, id
// hygiene, and bounded-queue backpressure (reject, never block).

#include "server/server.h"

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <vector>

#include "core/catalog.h"
#include "core/monitor.h"
#include "engine/database.h"
#include "workload/patients.h"
#include "workload/policies.h"

namespace aapac::server {
namespace {

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<engine::Database>();
    workload::PatientsConfig config;
    config.num_patients = 20;
    config.samples_per_patient = 10;
    ASSERT_TRUE(workload::BuildPatientsDatabase(db_.get(), config).ok());
    catalog_ = std::make_unique<core::AccessControlCatalog>(db_.get());
    ASSERT_TRUE(catalog_->Initialize().ok());
    ASSERT_TRUE(
        workload::ConfigurePatientsAccessControl(catalog_.get()).ok());
    workload::ScatteredPolicyConfig sp;
    sp.selectivity = 0.0;
    ASSERT_TRUE(workload::ApplyScatteredPolicies(catalog_.get(), sp).ok());
    monitor_ = std::make_unique<core::EnforcementMonitor>(db_.get(),
                                                          catalog_.get());
  }

  std::unique_ptr<engine::Database> db_;
  std::unique_ptr<core::AccessControlCatalog> catalog_;
  std::unique_ptr<core::EnforcementMonitor> monitor_;
};

TEST_F(SessionTest, OpenExecuteClose) {
  EnforcementServer server(monitor_.get());
  auto sid = server.OpenSession(/*user=*/"", "p3");
  ASSERT_TRUE(sid.ok()) << sid.status();
  EXPECT_EQ(server.sessions().active(), 1u);

  auto rs = server.Execute(*sid, "select count(*) from sensed_data");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->rows.size(), 1u);

  ASSERT_TRUE(server.CloseSession(*sid).ok());
  EXPECT_EQ(server.sessions().active(), 0u);
  // Queries against a closed session fail fast.
  auto after = server.Execute(*sid, "select count(*) from users");
  EXPECT_EQ(after.status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(server.CloseSession(*sid).ok());
}

TEST_F(SessionTest, PurposeNamesResolveLikeTheMonitor) {
  EnforcementServer server(monitor_.get());
  // Descriptions resolve to ids (as EnforcementMonitor::ExecuteQuery does).
  auto by_name = server.OpenSession("", "research");
  ASSERT_TRUE(by_name.ok()) << by_name.status();
  EXPECT_FALSE(server.OpenSession("", "no_such_purpose").ok());
}

TEST_F(SessionTest, UnauthorizedUserIsDenied) {
  EnforcementServer server(monitor_.get());
  auto denied = server.OpenSession("mallory", "p3");
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.status().code(), StatusCode::kPermissionDenied);

  ASSERT_TRUE(catalog_->AuthorizeUser("alice", "p3").ok());
  EXPECT_TRUE(server.OpenSession("alice", "p3").ok());
}

TEST_F(SessionTest, RevocationTakesEffectMidSession) {
  EnforcementServer server(monitor_.get());
  ASSERT_TRUE(catalog_->AuthorizeUser("alice", "p3").ok());
  auto sid = server.OpenSession("alice", "p3");
  ASSERT_TRUE(sid.ok()) << sid.status();
  ASSERT_TRUE(server.Execute(*sid, "select count(*) from users").ok());

  ASSERT_TRUE(server.WithExclusive(
                        [&] { return catalog_->RevokeUser("alice", "p3"); })
                  .ok());
  auto rs = server.Execute(*sid, "select count(*) from users");
  EXPECT_EQ(rs.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(SessionTest, SessionIdsAreNeverReused) {
  EnforcementServer server(monitor_.get());
  auto first = server.OpenSession("", "p3");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(server.CloseSession(*first).ok());
  auto second = server.OpenSession("", "p3");
  ASSERT_TRUE(second.ok());
  EXPECT_NE(*first, *second);
  EXPECT_EQ(server.sessions().opened_total(), 2u);
}

TEST_F(SessionTest, FullQueueRejectsInsteadOfBlocking) {
  ServerOptions options;
  options.threads = 1;
  options.queue_capacity = 1;
  EnforcementServer server(monitor_.get(), options);
  auto sid = server.OpenSession("", "p3");
  ASSERT_TRUE(sid.ok());

  // One worker, queue of one: a burst of async submissions must overrun the
  // queue, and the overflow is rejected immediately with kUnavailable.
  const std::string sql =
      "select u.user_id, avg(s.temperature) from users u join sensed_data s "
      "on u.watch_id = s.watch_id group by u.user_id";
  std::vector<std::future<Result<engine::ResultSet>>> accepted;
  size_t rejected = 0;
  for (int i = 0; i < 64; ++i) {
    auto fut = server.Submit(*sid, sql);
    if (fut.ok()) {
      accepted.push_back(std::move(*fut));
    } else {
      ASSERT_EQ(fut.status().code(), StatusCode::kUnavailable);
      ++rejected;
    }
  }
  EXPECT_GE(rejected, 1u);
  EXPECT_EQ(server.rejected_total(), rejected);
  // Every accepted submission still completes successfully.
  for (auto& fut : accepted) {
    auto rs = fut.get();
    EXPECT_TRUE(rs.ok()) << rs.status();
  }
  // Once drained, the server accepts work again.
  EXPECT_TRUE(server.Execute(*sid, "select count(*) from users").ok());
}

TEST_F(SessionTest, ShutdownRejectsNewWork) {
  EnforcementServer server(monitor_.get());
  auto sid = server.OpenSession("", "p3");
  ASSERT_TRUE(sid.ok());
  server.Shutdown();
  auto rs = server.Execute(*sid, "select count(*) from users");
  EXPECT_EQ(rs.status().code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace aapac::server
