// Epoch-mode concurrency stress: concurrent DML, audit-scan SELECTs and
// stop-the-world policy updates racing at the epoch boundary, plus the
// byte-equality guarantee — the audit trail a serial workload leaves
// behind is identical whether epoch concurrency is on or off.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/catalog.h"
#include "core/monitor.h"
#include "engine/database.h"
#include "server/server.h"
#include "util/env.h"
#include "workload/patients.h"
#include "workload/policies.h"
#include "workload/queries.h"

namespace aapac::server {
namespace {

struct Instance {
  std::unique_ptr<engine::Database> db;
  std::unique_ptr<core::AccessControlCatalog> catalog;
  std::unique_ptr<core::EnforcementMonitor> monitor;
};

Instance MakeInstance(double selectivity) {
  Instance inst;
  inst.db = std::make_unique<engine::Database>();
  workload::PatientsConfig config;
  config.num_patients = 30;
  config.samples_per_patient = 8;
  EXPECT_TRUE(workload::BuildPatientsDatabase(inst.db.get(), config).ok());
  inst.catalog = std::make_unique<core::AccessControlCatalog>(inst.db.get());
  EXPECT_TRUE(inst.catalog->Initialize().ok());
  EXPECT_TRUE(
      workload::ConfigurePatientsAccessControl(inst.catalog.get()).ok());
  workload::ScatteredPolicyConfig sp;
  sp.selectivity = selectivity;
  EXPECT_TRUE(workload::ApplyScatteredPolicies(inst.catalog.get(), sp).ok());
  inst.monitor = std::make_unique<core::EnforcementMonitor>(
      inst.db.get(), inst.catalog.get());
  return inst;
}

std::string Serialize(const engine::ResultSet& rs) {
  std::string out;
  for (const auto& c : rs.column_names) {
    out += c;
    out += ',';
  }
  out += '\n';
  for (const auto& row : rs.rows) {
    for (const auto& v : row) {
      out += v.ToString();
      out += '|';
    }
    out += '\n';
  }
  return out;
}

/// The same serial workload on a fresh instance under either concurrency
/// scheme: SELECTs (allowed and denied), DML on the unprotected purpose
/// table, and audit scans interleaved mid-stream. Returns the full audit
/// trail, serialized.
std::string AuditTrailFor(bool epoch_mode) {
  Instance inst = MakeInstance(0.2);
  EXPECT_TRUE(inst.monitor->EnableAuditLog().ok());
  ServerOptions options;
  options.threads = 2;
  options.epoch_mode = epoch_mode;
  EnforcementServer server(inst.monitor.get(), options);
  EXPECT_EQ(server.epoch_mode(), epoch_mode);

  auto sid = server.OpenSession("", "p3");
  EXPECT_TRUE(sid.ok());
  const std::vector<workload::BenchQuery> queries = workload::PaperQueries();
  size_t i = 0;
  size_t audited = 0;  // Enforced SELECTs so far (audit scans audit too).
  for (const auto& q : queries) {
    EXPECT_TRUE(server.Execute(*sid, q.sql).ok()) << q.name;
    ++audited;
    if (++i % 5 == 0) {
      // Mid-stream audit scan: fold-then-read (epoch) vs. exclusive retry
      // (fallback) must surface every record staged before it.
      auto scan = server.Execute(*sid, "select seq, outcome from audit_log");
      EXPECT_TRUE(scan.ok()) << scan.status();
      EXPECT_EQ(scan->rows.size(), audited);
      ++audited;
    }
    if (i % 7 == 0) {
      EXPECT_TRUE(
          server
              .ExecuteInsert(*sid, "insert into pr values ('zz_probe', 'x')")
              .ok());
      EXPECT_TRUE(
          server.ExecuteDelete(*sid, "delete from pr where id = 'zz_probe'")
              .ok());
    }
  }
  server.Shutdown();

  auto audit = inst.monitor->ExecuteUnrestricted(
      "select seq, ui, ap, qy, outcome, checks, rows from audit_log");
  EXPECT_TRUE(audit.ok()) << audit.status();
  return Serialize(*audit);
}

TEST(EpochStressTest, AuditTrailIsByteIdenticalAcrossModes) {
  if (util::EnvFlagSet("AAPAC_EPOCH_OFF"))
    GTEST_SKIP() << "AAPAC_EPOCH_OFF forces the fallback on both legs";
  const std::string epoch_on = AuditTrailFor(true);
  const std::string epoch_off = AuditTrailFor(false);
  EXPECT_FALSE(epoch_on.empty());
  EXPECT_EQ(epoch_on, epoch_off)
      << "the audit trail must not depend on the concurrency scheme";
}

TEST(EpochStressTest, ConcurrentDmlAuditScansAndPolicyUpdates) {
  Instance inst = MakeInstance(0.2);
  ASSERT_TRUE(inst.monitor->EnableAuditLog().ok());
  ServerOptions options;
  options.threads = 4;
  options.audit_fold_ms = 1;  // Aggressive background folding.
  EnforcementServer server(inst.monitor.get(), options);
  if (!server.epoch_mode())
    GTEST_SKIP() << "AAPAC_EPOCH_OFF set: this test targets the epoch path";

  constexpr size_t kReaders = 3;
  constexpr size_t kQueriesEach = 30;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reader_queries{0};
  std::atomic<uint64_t> writer_statements{0};

  std::vector<std::thread> threads;
  // Readers: plain SELECTs interleaved with audit scans, each scan
  // asserting monotone growth (fold-then-read may only add rows).
  for (size_t r = 0; r < kReaders; ++r) {
    threads.emplace_back([&] {
      auto sid = server.OpenSession("", "p3");
      ASSERT_TRUE(sid.ok());
      size_t last = 0;
      for (size_t q = 0; q < kQueriesEach; ++q) {
        auto rs = server.Execute(*sid, "select count(*) from sensed_data");
        EXPECT_TRUE(rs.ok()) << rs.status();
        auto scan = server.Execute(*sid, "select seq from audit_log");
        ASSERT_TRUE(scan.ok()) << scan.status();
        EXPECT_GE(scan->rows.size(), last);
        last = scan->rows.size();
        reader_queries.fetch_add(2, std::memory_order_relaxed);
      }
    });
  }
  // Writer: insert/delete churn on the unprotected purpose table — every
  // statement publishes a new table version at an epoch boundary.
  threads.emplace_back([&] {
    auto sid = server.OpenSession("", "p3");
    ASSERT_TRUE(sid.ok());
    while (!stop.load(std::memory_order_relaxed)) {
      EXPECT_TRUE(
          server
              .ExecuteInsert(*sid, "insert into pr values ('zz_probe', 'x')")
              .ok());
      EXPECT_TRUE(
          server.ExecuteDelete(*sid, "delete from pr where id = 'zz_probe'")
              .ok());
      writer_statements.fetch_add(2, std::memory_order_relaxed);
      std::this_thread::yield();
    }
  });
  // Admin: stop-the-world policy updates while readers pin epochs.
  threads.emplace_back([&] {
    for (int i = 0; i < 5; ++i) {
      EXPECT_TRUE(server
                      .WithExclusive([&] {
                        workload::ScatteredPolicyConfig sp;
                        sp.selectivity = (i % 2 == 0) ? 0.6 : 0.2;
                        return workload::ApplyScatteredPolicies(
                            inst.catalog.get(), sp);
                      })
                      .ok());
      std::this_thread::yield();
    }
    stop.store(true, std::memory_order_relaxed);
  });
  for (auto& t : threads) t.join();
  stop.store(true, std::memory_order_relaxed);
  server.Shutdown();

  // The audit trail is dense and distinct 1..N across every audited
  // statement — enforced SELECTs and the writer's DML (WithExclusive does
  // not audit): no record was lost between the sharded buffer and the
  // folded table.
  auto audit = inst.monitor->ExecuteUnrestricted("select seq from audit_log");
  ASSERT_TRUE(audit.ok()) << audit.status();
  const size_t total = reader_queries.load(std::memory_order_relaxed) +
                       writer_statements.load(std::memory_order_relaxed);
  ASSERT_EQ(audit->rows.size(), total);
  std::set<int64_t> seqs;
  for (const auto& row : audit->rows) seqs.insert(row[0].AsInt());
  EXPECT_EQ(seqs.size(), total);
  if (!seqs.empty()) {
    EXPECT_EQ(*seqs.begin(), 1);
    EXPECT_EQ(*seqs.rbegin(), static_cast<int64_t>(total));
  }

  // Version accounting: everything retired was eventually reclaimed (no
  // reader is live anymore).
  const ServerSnapshot snap = server.Snapshot();
  EXPECT_TRUE(snap.epoch_enabled);
  EXPECT_GT(snap.epoch_published, 0u);
  EXPECT_EQ(snap.audit_pending, 0u);
}

TEST(EpochStressTest, ReadersScaleWithoutBlockingDuringDml) {
  // Functional (not timing) check of reader/writer independence: readers
  // run lock-free against pinned snapshots while a writer publishes, so
  // every read must succeed and observe a consistent row count for the
  // protected table (DML only ever touches the unprotected one).
  Instance inst = MakeInstance(0.0);
  ServerOptions options;
  options.threads = 4;
  EnforcementServer server(inst.monitor.get(), options);
  if (!server.epoch_mode()) GTEST_SKIP() << "AAPAC_EPOCH_OFF set";

  auto probe = server.OpenSession("", "p3");
  ASSERT_TRUE(probe.ok());
  auto first = server.Execute(*probe, "select count(*) from sensed_data");
  ASSERT_TRUE(first.ok());
  const std::string expected = Serialize(*first);

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    auto sid = server.OpenSession("", "p3");
    ASSERT_TRUE(sid.ok());
    while (!stop.load(std::memory_order_relaxed)) {
      EXPECT_TRUE(
          server
              .ExecuteInsert(*sid, "insert into pr values ('zz_probe', 'x')")
              .ok());
      EXPECT_TRUE(
          server.ExecuteDelete(*sid, "delete from pr where id = 'zz_probe'")
              .ok());
    }
  });
  std::vector<std::thread> readers;
  for (size_t r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      auto sid = server.OpenSession("", "p3");
      ASSERT_TRUE(sid.ok());
      for (size_t q = 0; q < 40; ++q) {
        auto rs = server.Execute(*sid, "select count(*) from sensed_data");
        ASSERT_TRUE(rs.ok()) << rs.status();
        EXPECT_EQ(Serialize(*rs), expected);
      }
    });
  }
  for (auto& t : readers) t.join();
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

}  // namespace
}  // namespace aapac::server
