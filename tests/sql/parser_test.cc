#include "sql/parser.h"

#include <gtest/gtest.h>

#include "sql/printer.h"

namespace aapac::sql {
namespace {

std::unique_ptr<SelectStmt> Parse(const std::string& sql) {
  auto stmt = ParseSelect(sql);
  EXPECT_TRUE(stmt.ok()) << sql << " -> " << stmt.status();
  return stmt.ok() ? std::move(*stmt) : nullptr;
}

TEST(ParserTest, MinimalSelect) {
  auto stmt = Parse("select a from t");
  ASSERT_NE(stmt, nullptr);
  ASSERT_EQ(stmt->items.size(), 1u);
  EXPECT_EQ(stmt->items[0].expr->kind(), Expr::Kind::kColumnRef);
  ASSERT_EQ(stmt->from.size(), 1u);
  EXPECT_EQ(stmt->from[0]->kind(), TableRef::Kind::kBaseTable);
  EXPECT_EQ(stmt->where, nullptr);
  EXPECT_FALSE(stmt->distinct);
}

TEST(ParserTest, DistinctAndStar) {
  auto stmt = Parse("select distinct * from t");
  EXPECT_TRUE(stmt->distinct);
  EXPECT_EQ(stmt->items[0].expr->kind(), Expr::Kind::kStar);
}

TEST(ParserTest, QualifiedStar) {
  auto stmt = Parse("select t.* , u.x from t, u");
  ASSERT_EQ(stmt->items.size(), 2u);
  const auto& star = static_cast<const StarExpr&>(*stmt->items[0].expr);
  EXPECT_EQ(star.qualifier, "t");
  EXPECT_EQ(stmt->from.size(), 2u);
}

TEST(ParserTest, AliasesWithAndWithoutAs) {
  auto stmt = Parse("select a as x, b y from t1 as m, t2 n");
  EXPECT_EQ(stmt->items[0].alias, "x");
  EXPECT_EQ(stmt->items[1].alias, "y");
  const auto& t1 = static_cast<const BaseTableRef&>(*stmt->from[0]);
  const auto& t2 = static_cast<const BaseTableRef&>(*stmt->from[1]);
  EXPECT_EQ(t1.alias, "m");
  EXPECT_EQ(t2.alias, "n");
  EXPECT_EQ(t1.BindingName(), "m");
}

TEST(ParserTest, KeywordNotConsumedAsAlias) {
  auto stmt = Parse("select a from t where b = 1");
  EXPECT_EQ(stmt->items[0].alias, "");
  EXPECT_NE(stmt->where, nullptr);
}

TEST(ParserTest, JoinChain) {
  auto stmt = Parse(
      "select a from t1 join t2 on t1.x = t2.x inner join t3 on t2.y = t3.y");
  ASSERT_EQ(stmt->from.size(), 1u);
  ASSERT_EQ(stmt->from[0]->kind(), TableRef::Kind::kJoin);
  const auto& outer = static_cast<const JoinRef&>(*stmt->from[0]);
  EXPECT_EQ(outer.left->kind(), TableRef::Kind::kJoin);  // Left-deep.
  EXPECT_EQ(outer.right->kind(), TableRef::Kind::kBaseTable);
  EXPECT_NE(outer.on, nullptr);
}

TEST(ParserTest, DerivedTableRequiresAlias) {
  EXPECT_TRUE(ParseSelect("select a from (select b from t) s").ok());
  EXPECT_TRUE(ParseSelect("select a from (select b from t) as s").ok());
  EXPECT_FALSE(ParseSelect("select a from (select b from t)").ok());
}

TEST(ParserTest, GroupByHavingOrderLimit) {
  auto stmt = Parse(
      "select a, count(b) from t group by a, c having count(b) > 2 "
      "order by a desc, 2 limit 10");
  EXPECT_EQ(stmt->group_by.size(), 2u);
  ASSERT_NE(stmt->having, nullptr);
  ASSERT_EQ(stmt->order_by.size(), 2u);
  EXPECT_TRUE(stmt->order_by[0].descending);
  EXPECT_FALSE(stmt->order_by[1].descending);
  ASSERT_TRUE(stmt->limit.has_value());
  EXPECT_EQ(*stmt->limit, 10);
}

TEST(ParserTest, OperatorPrecedence) {
  // a + b * c < 10 or not d and e  parses as
  // (a + (b*c) < 10) or ((not d) and e).
  auto stmt = Parse("select 1 from t where a + b * c < 10 or not d and e");
  const auto& where = static_cast<const BinaryExpr&>(*stmt->where);
  EXPECT_EQ(where.op, BinaryOp::kOr);
  const auto& lhs = static_cast<const BinaryExpr&>(*where.lhs);
  EXPECT_EQ(lhs.op, BinaryOp::kLt);
  const auto& add = static_cast<const BinaryExpr&>(*lhs.lhs);
  EXPECT_EQ(add.op, BinaryOp::kAdd);
  const auto& mul = static_cast<const BinaryExpr&>(*add.rhs);
  EXPECT_EQ(mul.op, BinaryOp::kMul);
  const auto& rhs = static_cast<const BinaryExpr&>(*where.rhs);
  EXPECT_EQ(rhs.op, BinaryOp::kAnd);
  EXPECT_EQ(rhs.lhs->kind(), Expr::Kind::kUnary);
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  auto stmt = Parse("select (a + b) * c from t");
  const auto& mul = static_cast<const BinaryExpr&>(*stmt->items[0].expr);
  EXPECT_EQ(mul.op, BinaryOp::kMul);
  EXPECT_EQ(static_cast<const BinaryExpr&>(*mul.lhs).op, BinaryOp::kAdd);
}

TEST(ParserTest, LikeAndNotLike) {
  auto stmt = Parse("select 1 from t where a like 'x%' and b not like '_y'");
  const auto& where = static_cast<const BinaryExpr&>(*stmt->where);
  EXPECT_EQ(static_cast<const BinaryExpr&>(*where.lhs).op, BinaryOp::kLike);
  EXPECT_EQ(static_cast<const BinaryExpr&>(*where.rhs).op, BinaryOp::kNotLike);
}

TEST(ParserTest, InListAndInSubquery) {
  auto stmt = Parse(
      "select 1 from t where a in (1, 2, 3) and b not in (select c from u)");
  const auto& where = static_cast<const BinaryExpr&>(*stmt->where);
  const auto& in_list = static_cast<const InExpr&>(*where.lhs);
  EXPECT_EQ(in_list.list.size(), 3u);
  EXPECT_FALSE(in_list.negated);
  EXPECT_EQ(in_list.subquery, nullptr);
  const auto& in_sub = static_cast<const InExpr&>(*where.rhs);
  EXPECT_TRUE(in_sub.negated);
  EXPECT_NE(in_sub.subquery, nullptr);
}

TEST(ParserTest, BetweenAndIsNull) {
  auto stmt = Parse(
      "select 1 from t where a between 1 and 5 and b is null and c is not "
      "null and d not between 0 and 1");
  // Just verify it parses into the expected node kinds via printing.
  const std::string sql = ToSql(*stmt);
  EXPECT_NE(sql.find("between 1 and 5"), std::string::npos);
  EXPECT_NE(sql.find("is null"), std::string::npos);
  EXPECT_NE(sql.find("is not null"), std::string::npos);
  EXPECT_NE(sql.find("not between 0 and 1"), std::string::npos);
}

TEST(ParserTest, Literals) {
  auto stmt = Parse("select null, true, false, 1, 2.5, 'x', b'0101' from t");
  ASSERT_EQ(stmt->items.size(), 7u);
  const auto& lit0 = static_cast<const LiteralExpr&>(*stmt->items[0].expr);
  EXPECT_TRUE(std::holds_alternative<std::monostate>(lit0.value));
  const auto& lit6 = static_cast<const LiteralExpr&>(*stmt->items[6].expr);
  EXPECT_EQ(std::get<BitLiteral>(lit6.value).bits, "0101");
}

TEST(ParserTest, FunctionCalls) {
  auto stmt = Parse(
      "select count(*), count(distinct a), avg(b), coalesce(a, b, 1) from t");
  const auto& count_star =
      static_cast<const FuncCallExpr&>(*stmt->items[0].expr);
  ASSERT_EQ(count_star.args.size(), 1u);
  EXPECT_EQ(count_star.args[0]->kind(), Expr::Kind::kStar);
  const auto& count_distinct =
      static_cast<const FuncCallExpr&>(*stmt->items[1].expr);
  EXPECT_TRUE(count_distinct.distinct);
  const auto& coalesce =
      static_cast<const FuncCallExpr&>(*stmt->items[3].expr);
  EXPECT_EQ(coalesce.args.size(), 3u);
}

TEST(ParserTest, ScalarSubquery) {
  auto stmt = Parse("select a from t where b > (select max(c) from u)");
  const auto& where = static_cast<const BinaryExpr&>(*stmt->where);
  EXPECT_EQ(where.rhs->kind(), Expr::Kind::kScalarSubquery);
}

TEST(ParserTest, UnaryMinusAndPlus) {
  auto stmt = Parse("select -a, +b, -(c + 1) from t");
  EXPECT_EQ(stmt->items[0].expr->kind(), Expr::Kind::kUnary);
  EXPECT_EQ(stmt->items[1].expr->kind(), Expr::Kind::kColumnRef);  // +b == b.
}

TEST(ParserTest, TrailingSemicolonAllowed) {
  EXPECT_TRUE(ParseSelect("select a from t;").ok());
}

TEST(ParserTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseSelect("").ok());
  EXPECT_FALSE(ParseSelect("select").ok());
  EXPECT_FALSE(ParseSelect("select a").ok());         // Missing FROM.
  EXPECT_FALSE(ParseSelect("select from t").ok());
  EXPECT_FALSE(ParseSelect("select a from").ok());
  EXPECT_FALSE(ParseSelect("select a from t where").ok());
  EXPECT_FALSE(ParseSelect("select a from t group a").ok());   // Missing BY.
  EXPECT_FALSE(ParseSelect("select a from t join u").ok());    // Missing ON.
  EXPECT_FALSE(ParseSelect("select a from t limit x").ok());
  EXPECT_FALSE(ParseSelect("select a from t 42").ok());        // Trailing.
  EXPECT_FALSE(ParseSelect("select a, from t").ok());
  EXPECT_FALSE(ParseSelect("select (a from t").ok());
  EXPECT_FALSE(ParseSelect("select a from t where x in ()").ok());
  EXPECT_FALSE(ParseSelect("update t set a = 1").ok());
}

TEST(ParserTest, ParseErrorsCarryOffsets) {
  auto r = ParseSelect("select a from t where +");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("offset"), std::string::npos);
}

TEST(ParserTest, StandaloneExpression) {
  auto e = ParseExpression("a + b * 2");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(ToSql(**e), "(a + (b * 2))");
  EXPECT_FALSE(ParseExpression("a +").ok());
  EXPECT_FALSE(ParseExpression("a b").ok());
}

TEST(ParserTest, CloneProducesEqualSql) {
  auto stmt = Parse(
      "select distinct u.a as x, count(*) from t u join (select z from w "
      "where z in (1,2)) s on u.k = s.z where u.a between 1 and 9 or u.b is "
      "null group by u.a having count(*) > 1 order by x desc limit 5");
  auto clone = stmt->Clone();
  EXPECT_EQ(ToSql(*stmt), ToSql(*clone));
}

}  // namespace
}  // namespace aapac::sql
