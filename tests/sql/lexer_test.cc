#include "sql/lexer.h"

#include <gtest/gtest.h>

namespace aapac::sql {
namespace {

std::vector<Token> Lex(const std::string& s) {
  auto tokens = Tokenize(s);
  EXPECT_TRUE(tokens.ok()) << tokens.status();
  return std::move(tokens).ValueOr({});
}

TEST(LexerTest, EmptyInputYieldsEof) {
  auto tokens = Lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kEndOfInput);
}

TEST(LexerTest, IdentifiersAreLowered) {
  auto tokens = Lex("SELECT Users WATCH_id");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].text, "select");
  EXPECT_EQ(tokens[1].text, "users");
  EXPECT_EQ(tokens[2].text, "watch_id");
  EXPECT_TRUE(tokens[0].IsKeyword("select"));
}

TEST(LexerTest, NumbersClassified) {
  auto tokens = Lex("42 3.14 .5 1e3 2E-2 7.");
  EXPECT_EQ(tokens[0].type, TokenType::kInteger);
  EXPECT_EQ(tokens[0].text, "42");
  EXPECT_EQ(tokens[1].type, TokenType::kFloat);
  EXPECT_EQ(tokens[2].type, TokenType::kFloat);
  EXPECT_EQ(tokens[2].text, ".5");
  EXPECT_EQ(tokens[3].type, TokenType::kFloat);
  EXPECT_EQ(tokens[4].type, TokenType::kFloat);
  EXPECT_EQ(tokens[5].type, TokenType::kFloat);
}

TEST(LexerTest, StringsWithEscapes) {
  auto tokens = Lex("'hello' 'it''s' ''");
  EXPECT_EQ(tokens[0].type, TokenType::kString);
  EXPECT_EQ(tokens[0].text, "hello");
  EXPECT_EQ(tokens[1].text, "it's");
  EXPECT_EQ(tokens[2].text, "");
}

TEST(LexerTest, StringsPreserveCase) {
  auto tokens = Lex("'Vegan Diet'");
  EXPECT_EQ(tokens[0].text, "Vegan Diet");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("'oops").ok());
  EXPECT_FALSE(Tokenize("b'0101").ok());
}

TEST(LexerTest, BitLiterals) {
  auto tokens = Lex("b'0110' B'1'");
  EXPECT_EQ(tokens[0].type, TokenType::kBitLiteral);
  EXPECT_EQ(tokens[0].text, "0110");
  EXPECT_EQ(tokens[1].type, TokenType::kBitLiteral);
  EXPECT_EQ(tokens[1].text, "1");
}

TEST(LexerTest, BitLiteralRequiresQuoteAfterB) {
  // `b2` is just an identifier.
  auto tokens = Lex("b2");
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[0].text, "b2");
}

TEST(LexerTest, SymbolsAndMultiCharOperators) {
  auto tokens = Lex("a<=b <> != >= ( ) , . * + - / % ;");
  EXPECT_EQ(tokens[1].text, "<=");
  EXPECT_EQ(tokens[3].text, "<>");
  EXPECT_EQ(tokens[4].text, "!=");
  EXPECT_EQ(tokens[5].text, ">=");
  for (size_t i = 6; i + 1 < tokens.size(); ++i) {
    EXPECT_EQ(tokens[i].type, TokenType::kSymbol);
  }
}

TEST(LexerTest, LineCommentsSkipped) {
  auto tokens = Lex("select -- this is a comment\n 1");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "select");
  EXPECT_EQ(tokens[1].text, "1");
}

TEST(LexerTest, MinusVsCommentDisambiguation) {
  auto tokens = Lex("5 - 3");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[1].text, "-");
}

TEST(LexerTest, RejectsUnknownCharacters) {
  EXPECT_FALSE(Tokenize("select @foo").ok());
  EXPECT_FALSE(Tokenize("a # b").ok());
}

TEST(LexerTest, OffsetsPointIntoSource) {
  auto tokens = Lex("ab  cd");
  EXPECT_EQ(tokens[0].offset, 0u);
  EXPECT_EQ(tokens[1].offset, 4u);
}

TEST(LexerTest, FullQueryTokenStream) {
  auto tokens =
      Lex("select user_id, avg(beats) from users join sensed_data on "
          "users.watch_id = sensed_data.watch_id group by user_id having "
          "avg(beats)>90");
  // 29 real tokens + EOF.
  EXPECT_EQ(tokens.size(), 30u);
  EXPECT_EQ(tokens[tokens.size() - 2].text, "90");
}

}  // namespace
}  // namespace aapac::sql
