#include "sql/printer.h"

#include <gtest/gtest.h>

#include "workload/queries.h"
#include "sql/parser.h"

namespace aapac::sql {
namespace {

/// Parse → print must reach a fixpoint after one pass: print(parse(sql)) ==
/// print(parse(print(parse(sql)))).
void ExpectStableRoundTrip(const std::string& sql) {
  auto stmt1 = ParseSelect(sql);
  ASSERT_TRUE(stmt1.ok()) << sql << " -> " << stmt1.status();
  const std::string printed1 = ToSql(**stmt1);
  auto stmt2 = ParseSelect(printed1);
  ASSERT_TRUE(stmt2.ok()) << printed1 << " -> " << stmt2.status();
  EXPECT_EQ(ToSql(**stmt2), printed1) << "not a fixpoint for: " << sql;
}

TEST(PrinterTest, LiteralForms) {
  EXPECT_EQ(ToSql(LiteralValue{}), "null");
  EXPECT_EQ(ToSql(LiteralValue{int64_t{42}}), "42");
  EXPECT_EQ(ToSql(LiteralValue{2.5}), "2.5");
  EXPECT_EQ(ToSql(LiteralValue{3.0}), "3.0");  // Re-lexes as float.
  EXPECT_EQ(ToSql(LiteralValue{true}), "true");
  EXPECT_EQ(ToSql(LiteralValue{false}), "false");
  EXPECT_EQ(ToSql(LiteralValue{std::string("x")}), "'x'");
  EXPECT_EQ(ToSql(LiteralValue{std::string("it's")}), "'it''s'");
  EXPECT_EQ(ToSql(LiteralValue{BitLiteral{"0110"}}), "b'0110'");
}

TEST(PrinterTest, ExpressionForms) {
  auto print = [](const char* s) { return ToSql(**ParseExpression(s)); };
  EXPECT_EQ(print("a"), "a");
  EXPECT_EQ(print("t.a"), "t.a");
  EXPECT_EQ(print("a + b"), "(a + b)");
  EXPECT_EQ(print("not a"), "(not a)");
  EXPECT_EQ(print("-a"), "(-a)");
  EXPECT_EQ(print("a <> b"), "(a <> b)");
  EXPECT_EQ(print("a != b"), "(a <> b)");  // Normalized.
  EXPECT_EQ(print("f(a, b)"), "f(a, b)");
  EXPECT_EQ(print("count(*)"), "count(*)");
  EXPECT_EQ(print("count(distinct a)"), "count(distinct a)");
  EXPECT_EQ(print("a in (1, 2)"), "(a in (1, 2))");
  EXPECT_EQ(print("a not in (1)"), "(a not in (1))");
  EXPECT_EQ(print("a is null"), "(a is null)");
  EXPECT_EQ(print("a is not null"), "(a is not null)");
  EXPECT_EQ(print("a between 1 and 2"), "(a between 1 and 2)");
  EXPECT_EQ(print("a like 'x%'"), "(a like 'x%')");
  EXPECT_EQ(print("a not like 'x%'"), "(a not like 'x%')");
}

TEST(PrinterTest, StatementClauses) {
  auto stmt = ParseSelect(
      "select distinct a as x from t u join v on u.k = v.k where a > 1 "
      "group by a having count(*) > 0 order by x desc limit 3");
  const std::string sql = ToSql(**stmt);
  EXPECT_NE(sql.find("select distinct"), std::string::npos);
  EXPECT_NE(sql.find("a as x"), std::string::npos);
  EXPECT_NE(sql.find("t u join v on"), std::string::npos);
  EXPECT_NE(sql.find("group by a"), std::string::npos);
  EXPECT_NE(sql.find("having"), std::string::npos);
  EXPECT_NE(sql.find("order by x desc"), std::string::npos);
  EXPECT_NE(sql.find("limit 3"), std::string::npos);
}

TEST(PrinterTest, PaperQueriesRoundTrip) {
  for (const auto& q : workload::PaperQueries()) {
    ExpectStableRoundTrip(q.sql);
  }
}

TEST(PrinterTest, RandomQueriesRoundTrip) {
  for (uint64_t seed : {1u, 99u, 20160501u}) {
    for (const auto& q : workload::RandomQueries(seed)) {
      ExpectStableRoundTrip(q.sql);
    }
  }
}

TEST(PrinterTest, CraftedQueriesRoundTrip) {
  const char* cases[] = {
      "select * from t",
      "select t.* from t",
      "select a, -b + 2.5 * c from t where not (a = 1 or b like '%x_')",
      "select x from (select a as x from t where a in (select b from u)) s",
      "select a from t where b > (select avg(c) from u) and d is not null",
      "select count(*) from t group by a having min(b) between 1 and 2",
      "select b'1010' from t",
      "select a from t order by 1 desc limit 0",
  };
  for (const char* sql : cases) ExpectStableRoundTrip(sql);
}

}  // namespace
}  // namespace aapac::sql
