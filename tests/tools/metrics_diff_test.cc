// Regression tests for the `metrics_diff --require` presence gate
// (tools/metrics_require.h). The gate must decide presence by ANCHORED
// top-level key lookup, independent of the metric's value: the historical
// bug was a raw substring search over the whole dump, which let inner
// histogram fields pass as present and coupled "is it there" to wherever
// the first match landed — a published counter sitting at 0 must never be
// reported missing.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "tools/metrics_require.h"

namespace aapac::tools {
namespace {

// A miniature but structurally faithful RenderJson() dump: counters (one at
// zero), a gauge object, a histogram object, and a string value crafted to
// look like a key/value pair to any substring search.
const char kDump[] =
    R"({"enforce.static_allow":0,"enforce.static_deny":12,)"
    R"("enforce.checks":48000,)"
    R"("server.queue_depth":{"value":0,"max":7},)"
    R"("pipeline.rewrite":{"count":500,"p50_us":2.1,"p99_us":14.75},)"
    R"("build.info":"\"decoy\":99"})";

TEST(MetricsRequireTest, ZeroValuedCounterIsPresent) {
  const auto entries = TopLevelValues(kDump);
  const RequiredMetric m = RequireMetric(entries, "enforce.static_allow");
  EXPECT_TRUE(m.present)
      << "a published counter with value 0 was reported missing";
  EXPECT_FALSE(m.is_object);
  EXPECT_EQ(m.value, 0.0);
}

TEST(MetricsRequireTest, NonZeroCounterReportsItsValue) {
  const auto entries = TopLevelValues(kDump);
  const RequiredMetric m = RequireMetric(entries, "enforce.static_deny");
  EXPECT_TRUE(m.present);
  EXPECT_FALSE(m.is_object);
  EXPECT_EQ(m.value, 12.0);
}

TEST(MetricsRequireTest, HistogramAndGaugeArePresentAsObjects) {
  const auto entries = TopLevelValues(kDump);
  EXPECT_TRUE(RequireMetric(entries, "pipeline.rewrite").is_object);
  EXPECT_TRUE(RequireMetric(entries, "server.queue_depth").is_object);
}

TEST(MetricsRequireTest, AbsentMetricIsMissing) {
  const auto entries = TopLevelValues(kDump);
  EXPECT_FALSE(RequireMetric(entries, "enforce.static_mixed").present);
}

TEST(MetricsRequireTest, InnerHistogramFieldsAreNotTopLevelMetrics) {
  // The unanchored search found `"p99_us":` inside the histogram object and
  // called it present; the anchored scan must not.
  const auto entries = TopLevelValues(kDump);
  EXPECT_FALSE(RequireMetric(entries, "p99_us").present);
  EXPECT_FALSE(RequireMetric(entries, "count").present);
  EXPECT_FALSE(RequireMetric(entries, "max").present);
}

TEST(MetricsRequireTest, SubstringsOfRealKeysAreNotPresent) {
  const auto entries = TopLevelValues(kDump);
  EXPECT_FALSE(RequireMetric(entries, "static_allow").present);
  EXPECT_FALSE(RequireMetric(entries, "enforce.static").present);
  EXPECT_FALSE(RequireMetric(entries, "enforce.check").present);
}

TEST(MetricsRequireTest, QuotedLookAlikesInsideStringValuesAreIgnored) {
  const auto entries = TopLevelValues(kDump);
  EXPECT_FALSE(RequireMetric(entries, "decoy").present);
  const RequiredMetric m = RequireMetric(entries, "build.info");
  EXPECT_TRUE(m.present);
  EXPECT_FALSE(m.is_object);
}

TEST(MetricsRequireTest, PresenceIsIndependentPerName) {
  // One missing name must not disturb the verdicts of the others (the old
  // loop short-circuited per name off a shared find position).
  const auto entries = TopLevelValues(kDump);
  EXPECT_FALSE(RequireMetric(entries, "no.such.metric").present);
  EXPECT_TRUE(RequireMetric(entries, "enforce.static_allow").present);
  EXPECT_TRUE(RequireMetric(entries, "enforce.checks").present);
}

TEST(MetricsRequireTest, EmptyAndTruncatedDumpsYieldNothing) {
  EXPECT_TRUE(TopLevelValues("").empty());
  EXPECT_TRUE(TopLevelValues("[1,2]").empty());
  // Truncated mid-object: whatever was completed before the cut is usable,
  // nothing fabricated after it (well-formedness is gated upstream).
  const auto entries = TopLevelValues(R"({"a":1,"b":{"p99_us":3)");
  EXPECT_EQ(entries.count("a"), 1u);
  EXPECT_EQ(entries.count("b"), 0u);
  EXPECT_EQ(entries.count("p99_us"), 0u);
}

}  // namespace
}  // namespace aapac::tools
