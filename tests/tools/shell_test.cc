// The interactive shell session: meta commands, enforced SQL, formatting
// and error reporting.

#include "tools/shell.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "obs/metrics.h"
#include "workload/patients.h"
#include "workload/policies.h"

namespace aapac::tools {
namespace {

class ShellTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<engine::Database>();
    workload::PatientsConfig config;
    config.num_patients = 4;
    config.samples_per_patient = 2;
    ASSERT_TRUE(workload::BuildPatientsDatabase(db_.get(), config).ok());
    catalog_ = std::make_unique<core::AccessControlCatalog>(db_.get());
    ASSERT_TRUE(catalog_->Initialize().ok());
    ASSERT_TRUE(workload::ConfigurePatientsAccessControl(catalog_.get()).ok());
    workload::ScatteredPolicyConfig sp;
    sp.selectivity = 0.0;
    ASSERT_TRUE(workload::ApplyScatteredPolicies(catalog_.get(), sp).ok());
    monitor_ = std::make_unique<core::EnforcementMonitor>(db_.get(),
                                                          catalog_.get());
    session_ = std::make_unique<ShellSession>(db_.get(), catalog_.get(),
                                              monitor_.get());
  }

  std::unique_ptr<engine::Database> db_;
  std::unique_ptr<core::AccessControlCatalog> catalog_;
  std::unique_ptr<core::EnforcementMonitor> monitor_;
  std::unique_ptr<ShellSession> session_;
};

TEST_F(ShellTest, EmptyLineYieldsNothing) {
  EXPECT_EQ(session_->ProcessLine(""), "");
  EXPECT_EQ(session_->ProcessLine("   "), "");
}

TEST_F(ShellTest, HelpListsCommands) {
  const std::string out = session_->ProcessLine("\\help");
  EXPECT_NE(out.find("\\purpose"), std::string::npos);
  EXPECT_NE(out.find("\\rewrite"), std::string::npos);
}

TEST_F(ShellTest, SqlRequiresPurpose) {
  const std::string out = session_->ProcessLine("select user_id from users");
  EXPECT_NE(out.find("set an access purpose"), std::string::npos);
}

TEST_F(ShellTest, PurposeByIdOrDescription) {
  EXPECT_NE(session_->ProcessLine("\\purpose p1").find("purpose set to p1"),
            std::string::npos);
  EXPECT_EQ(session_->purpose(), "p1");
  EXPECT_NE(session_->ProcessLine("\\purpose research").find("p6"),
            std::string::npos);
  EXPECT_EQ(session_->purpose(), "p6");
  EXPECT_NE(session_->ProcessLine("\\purpose bogus").find("error"),
            std::string::npos);
}

TEST_F(ShellTest, EnforcedQueryReturnsTable) {
  session_->ProcessLine("\\purpose p1");
  const std::string out = session_->ProcessLine("select user_id from users");
  EXPECT_NE(out.find("user_id"), std::string::npos);
  EXPECT_NE(out.find("user0"), std::string::npos);
  EXPECT_NE(out.find("(4 rows)"), std::string::npos);
}

TEST_F(ShellTest, UserGateApplies) {
  session_->ProcessLine("\\purpose p1");
  session_->ProcessLine("\\user mallory");
  EXPECT_EQ(session_->user(), "mallory");
  const std::string denied = session_->ProcessLine("select user_id from users");
  EXPECT_NE(denied.find("PermissionDenied"), std::string::npos);
  ASSERT_TRUE(catalog_->AuthorizeUser("mallory", "p1").ok());
  const std::string ok = session_->ProcessLine("select user_id from users");
  EXPECT_NE(ok.find("(4 rows)"), std::string::npos);
  session_->ProcessLine("\\user");
  EXPECT_EQ(session_->user(), "");
}

TEST_F(ShellTest, TablesAndSchema) {
  const std::string tables = session_->ProcessLine("\\tables");
  EXPECT_NE(tables.find("users (protected)"), std::string::npos);
  EXPECT_NE(tables.find("pr"), std::string::npos);
  const std::string schema = session_->ProcessLine("\\schema sensed_data");
  EXPECT_NE(schema.find("temperature DOUBLE  [sensitive]"),
            std::string::npos);
  EXPECT_NE(schema.find("protected"), std::string::npos);
  EXPECT_NE(session_->ProcessLine("\\schema zz").find("error"),
            std::string::npos);
}

TEST_F(ShellTest, PurposesList) {
  const std::string out = session_->ProcessLine("\\purposes");
  EXPECT_NE(out.find("p1  treatment"), std::string::npos);
  EXPECT_NE(out.find("p8  sale"), std::string::npos);
}

TEST_F(ShellTest, RewriteShowsCompliesWith) {
  session_->ProcessLine("\\purpose p3");
  const std::string out =
      session_->ProcessLine("\\rewrite select user_id from users");
  EXPECT_NE(out.find("complies_with(b'"), std::string::npos);
  // Without a purpose, \rewrite refuses.
  ShellSession fresh(db_.get(), catalog_.get(), monitor_.get());
  EXPECT_NE(fresh.ProcessLine("\\rewrite select 1 from pr").find("error"),
            std::string::npos);
}

TEST_F(ShellTest, ExplainShowsSignatureBoundAndRewrite) {
  session_->ProcessLine("\\purpose p3");
  const std::string out = session_->ProcessLine(
      "\\explain select user_id, avg(beats) from users join sensed_data on "
      "users.watch_id = sensed_data.watch_id group by user_id");
  EXPECT_NE(out.find("== query signature =="), std::string::npos);
  EXPECT_NE(out.find("table users"), std::string::npos);
  EXPECT_NE(out.find("mask=b'"), std::string::npos);
  EXPECT_NE(out.find("complexity upper bound"), std::string::npos);
  EXPECT_NE(out.find("== rewritten query =="), std::string::npos);
  EXPECT_NE(out.find("complies_with"), std::string::npos);
}

TEST_F(ShellTest, UnrestrictedBypassesEnforcement) {
  workload::ScatteredPolicyConfig sp;
  sp.selectivity = 1.0;
  ASSERT_TRUE(workload::ApplyScatteredPolicies(catalog_.get(), sp).ok());
  session_->ProcessLine("\\purpose p1");
  EXPECT_NE(session_->ProcessLine("select user_id from users").find("(0 rows)"),
            std::string::npos);
  EXPECT_NE(session_->ProcessLine("\\unrestricted select user_id from users")
                .find("(4 rows)"),
            std::string::npos);
}

TEST_F(ShellTest, ChecksCounter) {
  session_->ProcessLine("\\purpose p1");
  session_->ProcessLine("select user_id from users");
  const std::string out = session_->ProcessLine("\\checks");
  EXPECT_NE(out.find("4 compliance checks"), std::string::npos);
}

TEST_F(ShellTest, SelectivityCommand) {
  const std::string out = session_->ProcessLine("\\selectivity users");
  EXPECT_NE(out.find("realized selectivity of users: 0"), std::string::npos);
  EXPECT_NE(session_->ProcessLine("\\selectivity pr").find("error"),
            std::string::npos);
}

TEST_F(ShellTest, UnknownCommandAndBadSql) {
  EXPECT_NE(session_->ProcessLine("\\frobnicate").find("unknown command"),
            std::string::npos);
  session_->ProcessLine("\\purpose p1");
  EXPECT_NE(session_->ProcessLine("selec nothing").find("error"),
            std::string::npos);
}

TEST_F(ShellTest, AttachParsesAndAppliesPolicies) {
  // Replace the scattered policies on sensed_data with a DSL-defined one
  // restricted to research aggregation.
  const std::string reply = session_->ProcessLine(
      "\\attach sensed_data : allow research direct single aggregate on "
      "temperature, beats joint(s, q); allow research indirect on *");
  EXPECT_NE(reply.find("policy attached to sensed_data"), std::string::npos)
      << reply;
  session_->ProcessLine("\\purpose research");
  EXPECT_NE(session_->ProcessLine("select avg(beats) from sensed_data")
                .find("(1 row)"),
            std::string::npos);
  // Raw reads now fail under research: every tuple carries the new policy.
  EXPECT_NE(session_->ProcessLine("select beats from sensed_data")
                .find("(0 rows)"),
            std::string::npos);
}

TEST_F(ShellTest, AttachWithSelector) {
  // First restrict every users tuple to p1, then open p2 for user0 only.
  session_->ProcessLine(
      "\\attach users : allow p1 direct single raw on *; "
      "allow p1 indirect on *");
  const std::string reply = session_->ProcessLine(
      "\\attach users where user_id = 'user0' : allow p2 direct single raw "
      "on user_id joint(all); allow p2 indirect on *");
  EXPECT_NE(reply.find("policy attached"), std::string::npos) << reply;
  session_->ProcessLine("\\purpose p2");
  EXPECT_NE(session_->ProcessLine("select user_id from users")
                .find("(1 row)"),
            std::string::npos);
  session_->ProcessLine("\\purpose p1");
  EXPECT_NE(session_->ProcessLine("select user_id from users")
                .find("(3 rows)"),
            std::string::npos);
}

TEST_F(ShellTest, AttachErrors) {
  EXPECT_NE(session_->ProcessLine("\\attach users allow p1 indirect on *")
                .find("usage"),
            std::string::npos);
  EXPECT_NE(session_->ProcessLine("\\attach users : allow p99 indirect on *")
                .find("error"),
            std::string::npos);
  EXPECT_NE(session_
                ->ProcessLine("\\attach users where user_id like 'x' : "
                              "allow p1 indirect on *")
                .find("error"),
            std::string::npos);
}

TEST_F(ShellTest, ShowPolicyDecodesMasks) {
  session_->ProcessLine(
      "\\attach users : allow p1 direct single raw on user_id "
      "joint(sensitive)");
  const std::string out = session_->ProcessLine("\\showpolicy users 0");
  EXPECT_NE(out.find("allow p1 direct single raw on user_id joint("
                     "sensitive)"),
            std::string::npos)
      << out;
  EXPECT_NE(session_->ProcessLine("\\showpolicy users 999").find("error"),
            std::string::npos);
  EXPECT_NE(session_->ProcessLine("\\showpolicy pr 0").find("error"),
            std::string::npos);
}

TEST_F(ShellTest, DmlStatementsRouted) {
  session_->ProcessLine("\\purpose p1");
  // Unprotected metadata table accepts plain inserts.
  EXPECT_NE(session_->ProcessLine("insert into pr values ('p9', 'extra')")
                .find("1 row(s) inserted"),
            std::string::npos);
  // Protected tables refuse policy-less shell inserts.
  EXPECT_NE(session_
                ->ProcessLine("insert into users values ('u', 'w', 'p')")
                .find("must carry a policy"),
            std::string::npos);
  // Enforced update/delete run and report row counts.
  EXPECT_NE(session_
                ->ProcessLine("update users set watch_id = 'w' where "
                              "user_id like 'user0'")
                .find("row(s) updated"),
            std::string::npos);
  EXPECT_NE(session_->ProcessLine("delete from users where user_id like "
                                  "'nobody'")
                .find("0 row(s) deleted"),
            std::string::npos);
}

TEST_F(ShellTest, CoverageCommand) {
  session_->ProcessLine(
      "\\attach users : allow p1 direct single raw on user_id joint(s); "
      "allow p1, p2 indirect on *");
  const std::string out = session_->ProcessLine("\\coverage users 0");
  EXPECT_NE(out.find("p1:"), std::string::npos);
  EXPECT_NE(out.find("p2:"), std::string::npos);
  EXPECT_NE(out.find("user_id: direct single raw joint(s)"),
            std::string::npos)
      << out;
  EXPECT_NE(session_->ProcessLine("\\coverage users").find("usage"),
            std::string::npos);
}

TEST_F(ShellTest, AuditCommand) {
  EXPECT_NE(session_->ProcessLine("\\audit").find("audit log is off"),
            std::string::npos);
  EXPECT_NE(session_->ProcessLine("\\audit on").find("enabled"),
            std::string::npos);
  session_->ProcessLine("\\purpose p1");
  session_->ProcessLine("select count(*) from users");
  const std::string out = session_->ProcessLine("\\audit 5");
  EXPECT_NE(out.find("outcome"), std::string::npos);
  EXPECT_NE(out.find("ok"), std::string::npos);
}

TEST_F(ShellTest, MetricsCommandRendersBothFormats) {
  session_->ProcessLine("\\purpose p1");
  session_->ProcessLine("select user_id from users");
  const std::string prom = session_->ProcessLine("\\metrics");
  EXPECT_NE(prom.find("# TYPE"), std::string::npos) << prom;
  EXPECT_NE(prom.find("enforce_ok"), std::string::npos) << prom;
  const std::string json = session_->ProcessLine("\\metrics json");
  EXPECT_NE(json.find("\"enforce.ok\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"pipeline.execute\""), std::string::npos) << json;
  EXPECT_NE(session_->ProcessLine("\\metrics bogus").find("usage"),
            std::string::npos);
}

TEST_F(ShellTest, TraceCommandShowsStageBreakdown) {
  if (!obs::kObsCompiledIn) GTEST_SKIP() << "built with AAPAC_OBS_OFF";
  session_->ProcessLine("\\purpose p1");
  session_->ProcessLine("select user_id from users");
  const std::string last = session_->ProcessLine("\\trace last");
  EXPECT_NE(last.find("select user_id from users"), std::string::npos) << last;
  EXPECT_NE(last.find("execute"), std::string::npos) << last;
  EXPECT_NE(session_->ProcessLine("\\trace").find("usage"),
            std::string::npos);
  EXPECT_NE(session_->ProcessLine("\\trace 9999999").find("error"),
            std::string::npos);
}

TEST_F(ShellTest, AnalyzeRendersOperatorProfile) {
  session_->ProcessLine("\\purpose p1");
  const std::string out =
      session_->ProcessLine("\\analyze select user_id from users");
  if (!obs::kObsCompiledIn) {
    // Obs-off builds degrade to a one-line notice, never a crash or a
    // half-rendered tree.
    EXPECT_NE(out.find("compiled out"), std::string::npos) << out;
    return;
  }
  EXPECT_NE(out.find("select user_id from users"), std::string::npos) << out;
  EXPECT_NE(out.find("Select"), std::string::npos) << out;
  EXPECT_NE(out.find("Scan users"), std::string::npos) << out;
  EXPECT_NE(out.find("checks: total=4"), std::string::npos) << out;
  // The published profile is retrievable again by id or as `last`.
  const std::string again = session_->ProcessLine("\\profile last");
  EXPECT_NE(again.find("Scan users"), std::string::npos) << again;
  EXPECT_NE(session_->ProcessLine("\\profile").find("usage"),
            std::string::npos);
  EXPECT_NE(session_->ProcessLine("\\profile 9999999").find("error"),
            std::string::npos);
}

TEST_F(ShellTest, AnalyzeRequiresPurposeAndSql) {
  if (!obs::kObsCompiledIn) GTEST_SKIP() << "built with AAPAC_OBS_OFF";
  EXPECT_NE(session_->ProcessLine("\\analyze select 1 from pr").find("error"),
            std::string::npos);
  session_->ProcessLine("\\purpose p1");
  EXPECT_NE(session_->ProcessLine("\\analyze").find("usage"),
            std::string::npos);
}

TEST_F(ShellTest, LedgerCommandReconcilesWithChecks) {
  session_->ProcessLine("\\purpose p1");
  EXPECT_NE(session_->ProcessLine("\\ledger").find("no enforcement"),
            std::string::npos);
  session_->ProcessLine("select user_id from users");
  const std::string out = session_->ProcessLine("\\ledger");
  if (!obs::kObsCompiledIn) {
    EXPECT_NE(out.find("no enforcement"), std::string::npos);
    return;
  }
  EXPECT_NE(out.find("users"), std::string::npos) << out;
  EXPECT_NE(out.find("select"), std::string::npos) << out;
  EXPECT_NE(out.find("p1"), std::string::npos) << out;
  // 4 rows scanned under scattered policies = 4 checks in the ledger row.
  EXPECT_NE(out.find("4"), std::string::npos) << out;
}

TEST_F(ShellTest, MetricsPromRendersOpenMetricsWithLedger) {
  session_->ProcessLine("\\purpose p1");
  session_->ProcessLine("select user_id from users");
  const std::string om = session_->ProcessLine("\\metrics prom");
  EXPECT_NE(om.find("enforce_ok_total 1"), std::string::npos) << om;
  EXPECT_NE(om.find("# EOF"), std::string::npos) << om;
  if (obs::kObsCompiledIn) {
    EXPECT_NE(om.find("aapac_ledger_checks_total{table=\"users\","
                      "purpose=\"p1\",action=\"select\"} 4"),
              std::string::npos)
        << om;
  }
}

TEST_F(ShellTest, ExplainNamesDeniedBitsUnderDenyAllPolicies) {
  workload::ScatteredPolicyConfig sp;
  sp.selectivity = 1.0;  // Pass-none policies: every tuple denies p3.
  ASSERT_TRUE(workload::ApplyScatteredPolicies(catalog_.get(), sp).ok());
  session_->ProcessLine("\\purpose p3");
  const std::string out =
      session_->ProcessLine("\\explain select user_id from users");
  EXPECT_NE(out.find("== compliance analysis =="), std::string::npos) << out;
  EXPECT_NE(out.find("DENIED"), std::string::npos) << out;
  EXPECT_NE(out.find("column 'user_id'"), std::string::npos) << out;
  EXPECT_NE(out.find("purpose 'p3'"), std::string::npos) << out;
  EXPECT_NE(out.find(", action-type]"), std::string::npos) << out;
}

TEST_F(ShellTest, ExplainRendersAllThreeStaticVerdictClasses) {
  session_->ProcessLine("\\purpose p3");
  const std::string sql = "\\explain select user_id from users";

  // SetUp applied selectivity 0: every policy carries a pass-all rule, so
  // the users conjunct is statically all-allow.
  std::string out = session_->ProcessLine(sql);
  EXPECT_NE(out.find("== static verdict =="), std::string::npos) << out;
  EXPECT_NE(out.find("all-allow (conjunct settles constant-true"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("0 deny of"), std::string::npos) << out;

  // Selectivity 1: pass-none-only policies everywhere — all-deny.
  workload::ScatteredPolicyConfig sp;
  sp.selectivity = 1.0;
  ASSERT_TRUE(workload::ApplyScatteredPolicies(catalog_.get(), sp).ok());
  out = session_->ProcessLine(sql);
  EXPECT_NE(out.find("all-deny (conjunct settles constant-false"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("0 allow /"), std::string::npos) << out;

  // Selectivity 0.5: two of the four users tuples deny — genuinely mixed,
  // and \explain says which path carries the per-tuple work.
  sp.selectivity = 0.5;
  ASSERT_TRUE(workload::ApplyScatteredPolicies(catalog_.get(), sp).ok());
  out = session_->ProcessLine(sql);
  EXPECT_NE(out.find("mixed (per-tuple memo/zone path"), std::string::npos)
      << out;

  // With the pass force-disabled the section says so instead of deciding.
  monitor_->SetStaticVerdictEnabled(false);
  out = session_->ProcessLine(sql);
  EXPECT_NE(out.find("disabled (AAPAC_STATIC_OFF"), std::string::npos) << out;
  EXPECT_EQ(out.find("all-deny"), std::string::npos) << out;
  monitor_->SetStaticVerdictEnabled(true);
}

TEST_F(ShellTest, PoliciesReportsDictionaryStats) {
  // Scattered policies at selectivity 0 give every users tuple a policy;
  // the interning dictionary holds far fewer distinct masks than rows.
  const std::string out = session_->ProcessLine("\\policies");
  EXPECT_NE(out.find("users: 4/4 tuples with a policy"), std::string::npos)
      << out;
  EXPECT_NE(out.find("distinct (dictionary "), std::string::npos) << out;
  EXPECT_NE(out.find("saves "), std::string::npos) << out;
  EXPECT_NE(out.find("sensed_data:"), std::string::npos) << out;
  // The dictionary never stores more blobs than the table has tuples with
  // a policy, and \help advertises the command.
  EXPECT_NE(session_->ProcessLine("\\help").find("\\policies"),
            std::string::npos);
}

TEST_F(ShellTest, RunShellDrivesStreams) {
  std::istringstream in(
      "\\purpose p1\nselect count(*) from users\n\\checks\n");
  std::ostringstream out;
  const int lines = RunShell(db_.get(), catalog_.get(), monitor_.get(), in, out);
  EXPECT_EQ(lines, 3);
  EXPECT_NE(out.str().find("aapac>"), std::string::npos);
  EXPECT_NE(out.str().find("count"), std::string::npos);
}

}  // namespace
}  // namespace aapac::tools
