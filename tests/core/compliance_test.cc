// Compliance (§4.4, §5.4): semantic Defs. 5-6, bitwise Listing 1 /
// Defs. 15-17, the packed fast path, and the key property that the mask
// implementation agrees with the semantic specification on random inputs.

#include "core/compliance.h"

#include <gtest/gtest.h>

#include "core/masks.h"
#include "util/rng.h"

namespace aapac::core {
namespace {

MaskLayout Layout() {
  return MaskLayout({"watch_id", "timestamp", "temperature", "position",
                     "beats"},
                    {"p1", "p2", "p3", "p4", "p5", "p6", "p7", "p8"});
}

PolicyRule MakeRule() {
  PolicyRule rule;
  rule.columns = {"temperature", "beats"};
  rule.purposes = {"p1", "p3"};
  rule.action_type = ActionType::Direct(Multiplicity::kSingle,
                                        Aggregation::kAggregation,
                                        JointAccess{true, true, true, false});
  return rule;
}

ActionSignature MakeSignature() {
  ActionSignature sig;
  sig.columns = {"temperature"};
  sig.action_type = ActionType::Direct(Multiplicity::kSingle,
                                       Aggregation::kAggregation,
                                       JointAccess{true, true, false, false});
  return sig;
}

TEST(SemanticComplianceTest, RuleClausesAllRequired) {
  const PolicyRule rule = MakeRule();
  const ActionSignature sig = MakeSignature();
  EXPECT_TRUE(SignatureRuleComplies(sig, "p1", rule));
  EXPECT_TRUE(SignatureRuleComplies(sig, "p3", rule));
  // Wrong purpose.
  EXPECT_FALSE(SignatureRuleComplies(sig, "p2", rule));
  // Columns not a subset.
  ActionSignature wide = sig;
  wide.columns = {"temperature", "position"};
  EXPECT_FALSE(SignatureRuleComplies(wide, "p1", rule));
  // Action type mismatch.
  ActionSignature no_agg = sig;
  no_agg.action_type.aggregation = Aggregation::kNoAggregation;
  EXPECT_FALSE(SignatureRuleComplies(no_agg, "p1", rule));
  // Joint access exceeds the rule.
  ActionSignature generic = sig;
  generic.action_type.joint_access.generic = true;
  EXPECT_FALSE(SignatureRuleComplies(generic, "p1", rule));
}

TEST(SemanticComplianceTest, PolicyNeedsOneCompliantRule) {
  Policy policy;
  policy.table = "sensed_data";
  PolicyRule other = MakeRule();
  other.purposes = {"p7"};
  policy.rules = {other};
  const ActionSignature sig = MakeSignature();
  EXPECT_FALSE(SignaturePolicyComplies(sig, "p1", policy));
  policy.rules.push_back(MakeRule());
  EXPECT_TRUE(SignaturePolicyComplies(sig, "p1", policy));
}

TEST(SemanticComplianceTest, QuerySignatureChecksAllMatchingTables) {
  Policy policy;
  policy.table = "sensed_data";
  policy.rules = {MakeRule()};

  QuerySignature qs;
  qs.purpose = "p1";
  TableSignature ts;
  ts.table = "sensed_data";
  ts.binding = "s";
  ts.actions = {MakeSignature()};
  qs.tables.push_back(std::move(ts));
  EXPECT_TRUE(QuerySignaturePolicyComplies(qs, policy));

  // Add a non-compliant signature on the same table.
  ActionSignature bad = MakeSignature();
  bad.columns = {"position"};
  qs.tables[0].actions.push_back(bad);
  EXPECT_FALSE(QuerySignaturePolicyComplies(qs, policy));

  // Signatures on other tables are ignored.
  QuerySignature other;
  other.purpose = "p1";
  TableSignature uts;
  uts.table = "users";
  uts.binding = "users";
  uts.actions = {bad};
  other.tables.push_back(std::move(uts));
  EXPECT_TRUE(QuerySignaturePolicyComplies(other, policy));
}

TEST(SemanticComplianceTest, SubquerySignaturesChecked) {
  Policy policy;
  policy.table = "sensed_data";
  policy.rules = {MakeRule()};
  QuerySignature qs;
  qs.purpose = "p1";
  auto sub = std::make_unique<QuerySignature>();
  sub->purpose = "p1";
  TableSignature ts;
  ts.table = "sensed_data";
  ts.binding = "sensed_data";
  ActionSignature bad = MakeSignature();
  bad.columns = {"position"};
  ts.actions = {bad};
  sub->tables.push_back(std::move(ts));
  qs.subqueries.push_back(std::move(sub));
  EXPECT_FALSE(QuerySignaturePolicyComplies(qs, policy));
}

TEST(BitwiseComplianceTest, Listing1Behaviour) {
  MaskLayout layout = Layout();
  auto asm_mask = layout.EncodeActionSignature(MakeSignature(), "p1");
  ASSERT_TRUE(asm_mask.ok());
  Policy policy;
  policy.table = "sensed_data";
  policy.rules = {MakeRule()};
  auto pm = layout.EncodePolicy(policy);
  ASSERT_TRUE(pm.ok());
  EXPECT_TRUE(CompliesWith(*asm_mask, *pm));

  // Length mismatch returns false, as the pseudocode does.
  EXPECT_FALSE(CompliesWith(*asm_mask, BitString(10)));
  EXPECT_FALSE(CompliesWith(BitString(), *pm));

  // Pass-none-only policy complies with nothing; pass-all with everything.
  BitString none;
  none.Append(layout.PassNoneRuleMask());
  none.Append(layout.PassNoneRuleMask());
  EXPECT_FALSE(CompliesWith(*asm_mask, none));
  BitString all;
  all.Append(layout.PassNoneRuleMask());
  all.Append(layout.PassAllRuleMask());
  EXPECT_TRUE(CompliesWith(*asm_mask, all));
}

TEST(BitwiseComplianceTest, PackedAgreesWithBitString) {
  MaskLayout layout = Layout();
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t bits = layout.rule_mask_bits();
    BitString asm_mask(bits);
    for (size_t i = 0; i < bits; ++i) asm_mask.Set(i, rng.NextBool(0.3));
    const int rules = static_cast<int>(rng.NextInt(1, 4));
    BitString pm;
    for (int r = 0; r < rules; ++r) {
      BitString rule_mask(bits);
      for (size_t i = 0; i < bits; ++i) rule_mask.Set(i, rng.NextBool());
      pm.Append(rule_mask);
    }
    EXPECT_EQ(CompliesWith(asm_mask, pm),
              CompliesWithPacked(asm_mask.ToBytes(), pm.ToBytes()));
  }
}

TEST(BitwiseComplianceTest, PackedRejectsMalformedInput) {
  EXPECT_FALSE(CompliesWithPacked("", ""));
  EXPECT_FALSE(CompliesWithPacked("xy", "zw"));
  MaskLayout layout = Layout();
  const std::string asm_bytes =
      layout.EncodeActionSignature(MakeSignature(), "p1")->ToBytes();
  // Policy whose bit count is not a multiple of the signature's.
  EXPECT_FALSE(CompliesWithPacked(asm_bytes, BitString(17).ToBytes()));
  // Truncated payload.
  std::string truncated = asm_bytes;
  truncated.pop_back();
  EXPECT_FALSE(CompliesWithPacked(asm_bytes, truncated));
}

TEST(BitwiseComplianceTest, UnalignedFallbackPath) {
  // 13-bit masks take the BitString fallback inside CompliesWithPacked.
  BitString sig = *BitString::FromBinary("1010000000000");
  BitString rule_yes = *BitString::FromBinary("1011100000001");
  BitString rule_no = *BitString::FromBinary("0111100000001");
  BitString pm;
  pm.Append(rule_no);
  pm.Append(rule_yes);
  EXPECT_TRUE(CompliesWithPacked(sig.ToBytes(), pm.ToBytes()));
  BitString pm2;
  pm2.Append(rule_no);
  EXPECT_FALSE(CompliesWithPacked(sig.ToBytes(), pm2.ToBytes()));
}

// ---------------------------------------------------------------------------
// The central property: mask-based compliance (Defs. 15-16) is equivalent to
// semantic compliance (Defs. 5-6) for well-formed rules and signatures.
// ---------------------------------------------------------------------------

class MaskSemanticsEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MaskSemanticsEquivalence, RandomPoliciesAgree) {
  Rng rng(GetParam());
  MaskLayout layout = Layout();
  auto random_action_type = [&](bool allow_bottom) {
    if (rng.NextBool(0.4)) {
      ActionType at = ActionType::Indirect(
          JointAccess{rng.NextBool(), rng.NextBool(), rng.NextBool(),
                      rng.NextBool()});
      if (!allow_bottom) {
        // Policy-side indirect rules may still specify ms/ag (paper Ex. 4).
        at.multiplicity = rng.NextBool() ? std::optional<Multiplicity>(
                                               Multiplicity::kMultiple)
                                         : std::nullopt;
      }
      return at;
    }
    return ActionType::Direct(
        rng.NextBool() ? Multiplicity::kSingle : Multiplicity::kMultiple,
        rng.NextBool() ? Aggregation::kAggregation
                       : Aggregation::kNoAggregation,
        JointAccess{rng.NextBool(), rng.NextBool(), rng.NextBool(),
                    rng.NextBool()});
  };
  auto random_columns = [&]() {
    std::set<std::string> cols;
    for (const auto& c : layout.columns()) {
      if (rng.NextBool(0.4)) cols.insert(c);
    }
    if (cols.empty()) cols.insert(layout.columns()[0]);
    return cols;
  };

  for (int trial = 0; trial < 300; ++trial) {
    Policy policy;
    policy.table = "sensed_data";
    const int n_rules = static_cast<int>(rng.NextInt(1, 3));
    for (int r = 0; r < n_rules; ++r) {
      PolicyRule rule;
      rule.columns = random_columns();
      for (const auto& p : layout.purposes()) {
        if (rng.NextBool(0.4)) rule.purposes.insert(p);
      }
      if (rule.purposes.empty()) rule.purposes.insert("p1");
      rule.action_type = random_action_type(/*allow_bottom=*/false);
      policy.rules.push_back(std::move(rule));
    }

    ActionSignature sig;
    sig.columns = random_columns();
    sig.action_type = random_action_type(/*allow_bottom=*/true);
    const std::string purpose =
        layout.purposes()[rng.NextIndex(layout.purposes().size())];

    const bool semantic = SignaturePolicyComplies(sig, purpose, policy);
    auto asm_mask = layout.EncodeActionSignature(sig, purpose);
    ASSERT_TRUE(asm_mask.ok());
    auto pm = layout.EncodePolicy(policy);
    ASSERT_TRUE(pm.ok());
    const bool bitwise = CompliesWith(*asm_mask, *pm);
    const bool packed = CompliesWithPacked(asm_mask->ToBytes(), pm->ToBytes());
    EXPECT_EQ(semantic, bitwise)
        << "policy=" << policy.ToString() << " sig=" << sig.ToString()
        << " purpose=" << purpose;
    EXPECT_EQ(bitwise, packed);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaskSemanticsEquivalence,
                         ::testing::Values(1, 7, 42, 123, 999, 31337));

// ---------------------------------------------------------------------------
// Mask algebra properties.
// ---------------------------------------------------------------------------

class MaskAlgebraTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  static PolicyRule RandomRule(Rng* rng, const MaskLayout& layout) {
    PolicyRule rule;
    for (const auto& c : layout.columns()) {
      if (rng->NextBool(0.5)) rule.columns.insert(c);
    }
    if (rule.columns.empty()) rule.columns.insert(layout.columns()[0]);
    for (const auto& p : layout.purposes()) {
      if (rng->NextBool(0.5)) rule.purposes.insert(p);
    }
    if (rule.purposes.empty()) rule.purposes.insert(layout.purposes()[0]);
    rule.action_type = ActionType::Direct(
        rng->NextBool() ? Multiplicity::kSingle : Multiplicity::kMultiple,
        rng->NextBool() ? Aggregation::kAggregation
                        : Aggregation::kNoAggregation,
        JointAccess{rng->NextBool(), rng->NextBool(), rng->NextBool(),
                    rng->NextBool()});
    return rule;
  }

  static ActionSignature RandomSignature(Rng* rng, const MaskLayout& layout) {
    ActionSignature sig;
    sig.columns.insert(
        layout.columns()[rng->NextIndex(layout.columns().size())]);
    if (rng->NextBool(0.4)) {
      sig.action_type = ActionType::Indirect(
          JointAccess{rng->NextBool(), rng->NextBool(), rng->NextBool(),
                      rng->NextBool()});
    } else {
      sig.action_type = ActionType::Direct(
          rng->NextBool() ? Multiplicity::kSingle : Multiplicity::kMultiple,
          rng->NextBool() ? Aggregation::kAggregation
                          : Aggregation::kNoAggregation,
          JointAccess{rng->NextBool(), rng->NextBool(), rng->NextBool(),
                      rng->NextBool()});
    }
    return sig;
  }
};

TEST_P(MaskAlgebraTest, RuleOrderDoesNotMatter) {
  Rng rng(GetParam());
  MaskLayout layout = Layout();
  for (int trial = 0; trial < 100; ++trial) {
    Policy policy;
    policy.table = "t";
    const int n = static_cast<int>(rng.NextInt(2, 4));
    for (int r = 0; r < n; ++r) policy.rules.push_back(RandomRule(&rng, layout));
    Policy reversed = policy;
    std::reverse(reversed.rules.begin(), reversed.rules.end());

    const ActionSignature sig = RandomSignature(&rng, layout);
    const std::string purpose =
        layout.purposes()[rng.NextIndex(layout.purposes().size())];
    auto asm_mask = layout.EncodeActionSignature(sig, purpose);
    ASSERT_TRUE(asm_mask.ok());
    EXPECT_EQ(CompliesWith(*asm_mask, *layout.EncodePolicy(policy)),
              CompliesWith(*asm_mask, *layout.EncodePolicy(reversed)));
  }
}

TEST_P(MaskAlgebraTest, AddingARuleNeverRevokes) {
  Rng rng(GetParam() * 13 + 5);
  MaskLayout layout = Layout();
  for (int trial = 0; trial < 100; ++trial) {
    Policy policy;
    policy.table = "t";
    policy.rules.push_back(RandomRule(&rng, layout));
    const ActionSignature sig = RandomSignature(&rng, layout);
    const std::string purpose =
        layout.purposes()[rng.NextIndex(layout.purposes().size())];
    auto asm_mask = layout.EncodeActionSignature(sig, purpose);
    ASSERT_TRUE(asm_mask.ok());
    const bool before = CompliesWith(*asm_mask, *layout.EncodePolicy(policy));
    policy.rules.push_back(RandomRule(&rng, layout));
    const bool after = CompliesWith(*asm_mask, *layout.EncodePolicy(policy));
    EXPECT_TRUE(!before || after)
        << "adding a rule revoked access: " << policy.ToString();
  }
}

TEST_P(MaskAlgebraTest, WideningARuleNeverRevokes) {
  Rng rng(GetParam() * 31 + 1);
  MaskLayout layout = Layout();
  for (int trial = 0; trial < 100; ++trial) {
    Policy policy;
    policy.table = "t";
    policy.rules.push_back(RandomRule(&rng, layout));
    const ActionSignature sig = RandomSignature(&rng, layout);
    const std::string purpose =
        layout.purposes()[rng.NextIndex(layout.purposes().size())];
    auto asm_mask = layout.EncodeActionSignature(sig, purpose);
    ASSERT_TRUE(asm_mask.ok());
    const bool before = CompliesWith(*asm_mask, *layout.EncodePolicy(policy));
    // Widen: add every column and purpose, open all joint categories.
    PolicyRule& rule = policy.rules[0];
    for (const auto& c : layout.columns()) rule.columns.insert(c);
    for (const auto& p : layout.purposes()) rule.purposes.insert(p);
    rule.action_type.joint_access = JointAccess::All();
    const bool after = CompliesWith(*asm_mask, *layout.EncodePolicy(policy));
    EXPECT_TRUE(!before || after);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaskAlgebraTest, ::testing::Values(2, 8, 64));

}  // namespace
}  // namespace aapac::core
