// Byun-Li purpose-only baseline: tuple-level intended purposes, rewriting,
// and the expressiveness gap to the action-aware model.

#include "core/baseline/byun_li.h"

#include <gtest/gtest.h>

#include <memory>

#include "workload/patients.h"

namespace aapac::core::baseline {
namespace {

using engine::Value;

class ByunLiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<engine::Database>();
    workload::PatientsConfig config;
    config.num_patients = 6;
    config.samples_per_patient = 4;
    ASSERT_TRUE(workload::BuildPatientsDatabase(db_.get(), config).ok());
    catalog_ = std::make_unique<AccessControlCatalog>(db_.get());
    ASSERT_TRUE(catalog_->Initialize().ok());
    ASSERT_TRUE(workload::ConfigurePatientsAccessControl(catalog_.get()).ok());
    monitor_ = std::make_unique<ByunLiMonitor>(db_.get(), catalog_.get());
  }

  std::unique_ptr<engine::Database> db_;
  std::unique_ptr<AccessControlCatalog> catalog_;
  std::unique_ptr<ByunLiMonitor> monitor_;
};

TEST_F(ByunLiTest, ProtectAddsIntendedPurposesColumn) {
  ASSERT_TRUE(monitor_->ProtectTable("users").ok());
  EXPECT_TRUE(monitor_->IsProtected("users"));
  EXPECT_TRUE(db_->FindTable("users")->schema().HasColumn("intended_purposes"));
  EXPECT_FALSE(monitor_->ProtectTable("users").ok());
  EXPECT_FALSE(monitor_->ProtectTable("nope").ok());
}

TEST_F(ByunLiTest, PurposeComplianceGatesTuples) {
  ASSERT_TRUE(monitor_->ProtectTable("users").ok());
  ASSERT_TRUE(monitor_->SetIntendedPurposes("users", {"p1", "p6"}).ok());
  auto rs = monitor_->ExecuteQuery("select user_id from users", "p1");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 6u);
  rs = monitor_->ExecuteQuery("select user_id from users", "p6");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 6u);
  rs = monitor_->ExecuteQuery("select user_id from users", "p7");
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(rs->rows.empty());
}

TEST_F(ByunLiTest, PerTupleIntendedPurposes) {
  ASSERT_TRUE(monitor_->ProtectTable("users").ok());
  ASSERT_TRUE(monitor_->SetIntendedPurposes("users", {"p1"}).ok());
  ASSERT_TRUE(monitor_
                  ->SetIntendedPurposesWhere("users", "user_id",
                                             Value::String("user0"), {"p6"})
                  .ok());
  auto rs = monitor_->ExecuteQuery("select user_id from users", "p6");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->rows.size(), 1u);
  EXPECT_EQ(rs->rows[0][0].AsString(), "user0");
  rs = monitor_->ExecuteQuery("select user_id from users", "p1");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 5u);
}

TEST_F(ByunLiTest, UnsetIntendedPurposesDeny) {
  ASSERT_TRUE(monitor_->ProtectTable("users").ok());
  auto rs = monitor_->ExecuteQuery("select user_id from users", "p1");
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(rs->rows.empty());
}

TEST_F(ByunLiTest, RewriteAddsOneCheckPerProtectedBinding) {
  ASSERT_TRUE(monitor_->ProtectTable("users").ok());
  ASSERT_TRUE(monitor_->ProtectTable("sensed_data").ok());
  auto sql = monitor_->Rewrite(
      "select user_id, temperature from users join sensed_data s on "
      "users.watch_id = s.watch_id where temperature > 37",
      "p1");
  ASSERT_TRUE(sql.ok());
  size_t count = 0;
  for (size_t pos = sql->find("purpose_allows"); pos != std::string::npos;
       pos = sql->find("purpose_allows", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 2u);
  EXPECT_NE(sql->find("users.intended_purposes"), std::string::npos);
  EXPECT_NE(sql->find("s.intended_purposes"), std::string::npos);
  // Original predicate stays ahead of the purpose checks.
  EXPECT_LT(sql->find("temperature > 37"), sql->find("purpose_allows"));
}

TEST_F(ByunLiTest, SubqueriesRewritten) {
  ASSERT_TRUE(monitor_->ProtectTable("nutritional_profiles").ok());
  auto sql = monitor_->Rewrite(
      "select user_id from users where nutritional_profile_id in "
      "(select profile_id from nutritional_profiles)",
      "p1");
  ASSERT_TRUE(sql.ok());
  EXPECT_NE(sql->find("nutritional_profiles.intended_purposes"),
            std::string::npos);
}

TEST_F(ByunLiTest, ChecksCounter) {
  ASSERT_TRUE(monitor_->ProtectTable("users").ok());
  ASSERT_TRUE(monitor_->SetIntendedPurposes("users", {"p1"}).ok());
  monitor_->ResetPurposeChecks();
  ASSERT_TRUE(monitor_->ExecuteQuery("select user_id from users", "p1").ok());
  EXPECT_EQ(monitor_->purpose_checks(), 6u);
}

TEST_F(ByunLiTest, CannotExpressActionAwareness) {
  // The motivating gap: with intended purpose p6 granted, BOTH the
  // aggregate and the raw dump flow — purpose-only control cannot separate
  // the paper's q_a from q_b.
  ASSERT_TRUE(monitor_->ProtectTable("sensed_data").ok());
  ASSERT_TRUE(monitor_->SetIntendedPurposes("sensed_data", {"p6"}).ok());
  auto aggregate =
      monitor_->ExecuteQuery("select avg(temperature) from sensed_data", "p6");
  auto raw =
      monitor_->ExecuteQuery("select temperature from sensed_data", "p6");
  ASSERT_TRUE(aggregate.ok());
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(aggregate->rows.size(), 1u);
  EXPECT_EQ(raw->rows.size(), 24u);  // Full disclosure.
}

TEST_F(ByunLiTest, UnknownPurposeRejected) {
  EXPECT_FALSE(monitor_->ExecuteQuery("select user_id from users", "p99").ok());
  EXPECT_FALSE(monitor_->SetIntendedPurposes("users", {"p99"}).ok());
}

}  // namespace
}  // namespace aapac::core::baseline
