// EnforcementMonitor::ExplainQuery: the human-readable enforcement report.

#include <gtest/gtest.h>

#include <memory>

#include "core/monitor.h"
#include "workload/patients.h"

namespace aapac::core {
namespace {

class ExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<engine::Database>();
    workload::PatientsConfig config;
    config.num_patients = 3;
    config.samples_per_patient = 4;
    ASSERT_TRUE(workload::BuildPatientsDatabase(db_.get(), config).ok());
    catalog_ = std::make_unique<AccessControlCatalog>(db_.get());
    ASSERT_TRUE(catalog_->Initialize().ok());
    ASSERT_TRUE(workload::ConfigurePatientsAccessControl(catalog_.get()).ok());
    monitor_ = std::make_unique<EnforcementMonitor>(db_.get(), catalog_.get());
  }

  std::unique_ptr<engine::Database> db_;
  std::unique_ptr<AccessControlCatalog> catalog_;
  std::unique_ptr<EnforcementMonitor> monitor_;
};

TEST_F(ExplainTest, ReportSections) {
  auto report = monitor_->ExplainQuery(
      "select avg(beats) from sensed_data where temperature > 37", "p6");
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_NE(report->find("== query signature =="), std::string::npos);
  EXPECT_NE(report->find("purpose=p6"), std::string::npos);
  EXPECT_NE(report->find("table sensed_data"), std::string::npos);
  EXPECT_NE(report->find("<d,s,a,"), std::string::npos);
  EXPECT_NE(report->find("<i,_,_,"), std::string::npos);
  EXPECT_NE(report->find("mask=b'"), std::string::npos);
  // 12 sensed rows x 2 signatures.
  EXPECT_NE(report->find("24 checks"), std::string::npos);
  EXPECT_NE(report->find("== rewritten query =="), std::string::npos);
}

TEST_F(ExplainTest, SubqueriesNested) {
  auto report = monitor_->ExplainQuery(
      "select user_id from users where nutritional_profile_id in "
      "(select profile_id from nutritional_profiles)",
      "p1");
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->find("table nutritional_profiles"), std::string::npos);
  // Sub-query line is indented relative to the root.
  EXPECT_NE(report->find("\n  query "), std::string::npos);
}

TEST_F(ExplainTest, UnprotectedTablesFlagged) {
  auto report = monitor_->ExplainQuery("select id from pr", "p1");
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->find("(unprotected)"), std::string::npos);
  EXPECT_NE(report->find("0 checks"), std::string::npos);
}

TEST_F(ExplainTest, ExplainDoesNotExecute) {
  ASSERT_TRUE(
      monitor_->ExplainQuery("select user_id from users", "p1").ok());
  EXPECT_EQ(monitor_->compliance_checks(), 0u);
}

TEST_F(ExplainTest, ErrorsPropagate) {
  EXPECT_FALSE(monitor_->ExplainQuery("select x from users", "p1").ok());
  EXPECT_FALSE(monitor_->ExplainQuery("select user_id from users", "p99").ok());
  EXPECT_FALSE(monitor_->ExplainQuery("bogus", "p1").ok());
}

}  // namespace
}  // namespace aapac::core
