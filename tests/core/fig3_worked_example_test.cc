// Reproduces the paper's worked examples:
//  - Fig. 3: info tuples and query signature of
//      select user_id, avg(beats) from users join sensed_data
//      on users.watch_id = sensed_data.watch_id
//      group by user_id having avg(beats)>90       (purpose p3)
//  - Examples 9-13: the purpose/column/action-type/rule masks of rule r2.
//  - Listing 3: the complies_with conjuncts of the rewritten query.

#include <gtest/gtest.h>

#include <memory>

#include "core/catalog.h"
#include "core/masks.h"
#include "core/monitor.h"
#include "core/signature_builder.h"
#include "sql/parser.h"
#include "workload/patients.h"

namespace aapac {
namespace {

using core::AccessControlCatalog;
using core::ActionSignature;
using core::ActionType;
using core::Aggregation;
using core::Indirection;
using core::JointAccess;
using core::MaskLayout;
using core::Multiplicity;
using core::PolicyRule;
using core::QuerySignature;
using core::SignatureBuilder;
using core::TableSignature;

constexpr char kFig3Query[] =
    "select user_id, avg(beats) from users join sensed_data on "
    "users.watch_id = sensed_data.watch_id group by user_id having "
    "avg(beats)>90";

class Fig3Test : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<engine::Database>();
    workload::PatientsConfig config;
    config.num_patients = 3;
    config.samples_per_patient = 2;
    ASSERT_TRUE(workload::BuildPatientsDatabase(db_.get(), config).ok());
    catalog_ = std::make_unique<AccessControlCatalog>(db_.get());
    ASSERT_TRUE(catalog_->Initialize().ok());
    ASSERT_TRUE(workload::ConfigurePatientsAccessControl(catalog_.get()).ok());
  }

  const TableSignature* FindTable(const QuerySignature& qs,
                                  const std::string& binding) {
    for (const TableSignature& ts : qs.tables) {
      if (ts.binding == binding) return &ts;
    }
    return nullptr;
  }

  bool HasAction(const TableSignature& ts, const ActionSignature& expected) {
    for (const ActionSignature& as : ts.actions) {
      if (as == expected) return true;
    }
    return false;
  }

  std::unique_ptr<engine::Database> db_;
  std::unique_ptr<AccessControlCatalog> catalog_;
};

TEST_F(Fig3Test, QuerySignatureMatchesFigure3) {
  auto stmt = sql::ParseSelect(kFig3Query);
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  SignatureBuilder builder(catalog_.get());
  auto qs = builder.Derive(**stmt, "p3");
  ASSERT_TRUE(qs.ok()) << qs.status();

  EXPECT_EQ((*qs)->purpose, "p3");
  ASSERT_EQ((*qs)->tables.size(), 2u);
  EXPECT_TRUE((*qs)->subqueries.empty());

  // users: direct(s,n) on user_id with Ja=(n,a,a,n); indirect on watch_id
  // with Ja=(a,a,a,n); indirect on user_id with Ja=(n,a,a,n).
  const TableSignature* users = FindTable(**qs, "users");
  ASSERT_NE(users, nullptr);
  EXPECT_EQ(users->table, "users");
  ASSERT_EQ(users->actions.size(), 3u);
  EXPECT_TRUE(HasAction(
      *users,
      ActionSignature{{"user_id"},
                      ActionType::Direct(Multiplicity::kSingle,
                                         Aggregation::kNoAggregation,
                                         JointAccess{false, true, true,
                                                     false})}));
  EXPECT_TRUE(HasAction(
      *users, ActionSignature{{"watch_id"},
                              ActionType::Indirect(
                                  JointAccess{true, true, true, false})}));
  EXPECT_TRUE(HasAction(
      *users, ActionSignature{{"user_id"},
                              ActionType::Indirect(
                                  JointAccess{false, true, true, false})}));

  // sensed_data: direct(s,a) on beats with Ja=(a,a,n,n); indirect on
  // watch_id with Ja=(a,a,a,n); indirect on beats with Ja=(a,a,n,n).
  const TableSignature* sensed = FindTable(**qs, "sensed_data");
  ASSERT_NE(sensed, nullptr);
  ASSERT_EQ(sensed->actions.size(), 3u);
  EXPECT_TRUE(HasAction(
      *sensed,
      ActionSignature{{"beats"},
                      ActionType::Direct(Multiplicity::kSingle,
                                         Aggregation::kAggregation,
                                         JointAccess{true, true, false,
                                                     false})}));
  EXPECT_TRUE(HasAction(
      *sensed, ActionSignature{{"watch_id"},
                               ActionType::Indirect(
                                   JointAccess{true, true, true, false})}));
  EXPECT_TRUE(HasAction(
      *sensed, ActionSignature{{"beats"},
                               ActionType::Indirect(
                                   JointAccess{true, true, false, false})}));
}

TEST_F(Fig3Test, InfoTuplesMatchFigure3) {
  auto stmt = sql::ParseSelect(kFig3Query);
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  SignatureBuilder builder(catalog_.get());
  auto tuples = builder.DeriveInfoTuples(**stmt, "p3");
  ASSERT_TRUE(tuples.ok()) << tuples.status();
  // Fig. 3 lists six info tuples: user_id(d), beats(d,agg), watch_id(i) for
  // both tables, user_id(i) from GROUP BY, beats(i) from HAVING.
  EXPECT_EQ(tuples->size(), 6u);
  int direct = 0;
  int indirect = 0;
  for (const core::InfoTuple& t : *tuples) {
    EXPECT_EQ(t.purpose, "p3");
    if (t.indirection == Indirection::kDirect) {
      ++direct;
      EXPECT_TRUE(t.multiplicity.has_value());
      EXPECT_EQ(*t.multiplicity, Multiplicity::kSingle);
    } else {
      ++indirect;
      EXPECT_FALSE(t.multiplicity.has_value());
      EXPECT_FALSE(t.aggregation.has_value());
    }
  }
  EXPECT_EQ(direct, 2);
  EXPECT_EQ(indirect, 4);
}

// Examples 9-12: masks of rule r2 = <{temperature,beats},{p1,p3,p4,p6},
// <d,s,n,<n,n,a,n>>> over sensed_data.
TEST_F(Fig3Test, RuleMaskMatchesExamples9Through12) {
  auto layout = catalog_->LayoutFor("sensed_data");
  ASSERT_TRUE(layout.ok()) << layout.status();
  // sensed_data has 5 attributes and there are 8 purposes: 5+8+10 = 23 bits,
  // padded to 24 — the paper's "policy rules have a length of 24 bits".
  EXPECT_EQ(layout->unpadded_bits(), 23u);
  EXPECT_EQ(layout->rule_mask_bits(), 24u);

  PolicyRule r2;
  r2.columns = {"temperature", "beats"};
  r2.purposes = {"p1", "p3", "p4", "p6"};
  r2.action_type = ActionType::Direct(Multiplicity::kSingle,
                                      Aggregation::kNoAggregation,
                                      JointAccess{false, false, true, false});
  auto mask = layout->EncodeRule(r2);
  ASSERT_TRUE(mask.ok()) << mask.status();
  // Column mask (Ex. 10): temperature and beats are the 3rd and 5th
  // attributes -> 00101. Purpose mask (Ex. 9): {p1,p3,p4,p6} -> 10110100.
  // Action mask (Ex. 11): direct, single, no aggregation, joint sensitive
  // -> 0110010010. Plus one zero pad bit.
  EXPECT_EQ(mask->ToBinary(), "001011011010001100100100");
}

// Listing 3: the rewritten Fig. 3 query carries six complies_with
// conjuncts, three per table, with the masks derived from the signature.
TEST_F(Fig3Test, RewrittenQueryMatchesListing3) {
  core::EnforcementMonitor monitor(db_.get(), catalog_.get());
  auto rewritten = monitor.Rewrite(kFig3Query, "p3");
  ASSERT_TRUE(rewritten.ok()) << rewritten.status();
  const std::string& sql = *rewritten;

  size_t count = 0;
  for (size_t pos = sql.find("complies_with"); pos != std::string::npos;
       pos = sql.find("complies_with", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 6u);
  EXPECT_NE(sql.find("users.policy"), std::string::npos);
  EXPECT_NE(sql.find("sensed_data.policy"), std::string::npos);
  EXPECT_NE(sql.find("group by"), std::string::npos);
  EXPECT_NE(sql.find("having"), std::string::npos);

  // The rewritten query still parses.
  auto reparsed = sql::ParseSelect(sql);
  EXPECT_TRUE(reparsed.ok()) << reparsed.status();
}

}  // namespace
}  // namespace aapac
