// Policy coverage analysis: flattening, subsumption, the single-cell
// IsGranted check, and the textual report.

#include "core/coverage.h"

#include <gtest/gtest.h>

namespace aapac::core {
namespace {

Policy TwoRulePolicy() {
  Policy policy;
  policy.table = "sensed_data";
  PolicyRule agg;
  agg.columns = {"temperature", "beats"};
  agg.purposes = {"p1", "p6"};
  agg.action_type = ActionType::Direct(Multiplicity::kSingle,
                                       Aggregation::kAggregation,
                                       JointAccess{false, true, true, false});
  PolicyRule indirect;
  indirect.columns = {"temperature"};
  indirect.purposes = {"p6"};
  indirect.action_type = ActionType::Indirect(JointAccess::All());
  policy.rules = {agg, indirect};
  return policy;
}

TEST(CoverageTest, FlattensPerPurposeAndColumn) {
  const auto grants = FlattenPolicy(TwoRulePolicy());
  // 2 purposes x 2 columns + 1 purpose x 1 column = 5 grants.
  EXPECT_EQ(grants.size(), 5u);
  int p6_temperature = 0;
  for (const Grant& g : grants) {
    if (g.purpose == "p6" && g.column == "temperature") ++p6_temperature;
  }
  EXPECT_EQ(p6_temperature, 2);  // Aggregate + indirect.
}

TEST(CoverageTest, DropsExactDuplicates) {
  Policy policy = TwoRulePolicy();
  policy.rules.push_back(policy.rules[0]);  // Duplicate rule.
  EXPECT_EQ(FlattenPolicy(policy).size(), 5u);
}

TEST(CoverageTest, DropsSubsumedGrants) {
  Policy policy;
  policy.table = "t";
  PolicyRule narrow;
  narrow.columns = {"a"};
  narrow.purposes = {"p1"};
  narrow.action_type = ActionType::Direct(
      Multiplicity::kSingle, Aggregation::kNoAggregation,
      JointAccess{false, false, true, false});
  PolicyRule wide = narrow;
  wide.action_type.joint_access = JointAccess::All();
  policy.rules = {narrow, wide};
  const auto grants = FlattenPolicy(policy);
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].action.joint_access, JointAccess::All());
}

TEST(CoverageTest, DifferentShapesNotSubsumed) {
  Policy policy;
  policy.table = "t";
  PolicyRule raw;
  raw.columns = {"a"};
  raw.purposes = {"p1"};
  raw.action_type = ActionType::Direct(
      Multiplicity::kSingle, Aggregation::kNoAggregation, JointAccess::All());
  PolicyRule agg = raw;
  agg.action_type.aggregation = Aggregation::kAggregation;
  policy.rules = {raw, agg};
  EXPECT_EQ(FlattenPolicy(policy).size(), 2u);
}

TEST(CoverageTest, IsGrantedMatchesCompliance) {
  const Policy policy = TwoRulePolicy();
  const ActionType agg_qs = ActionType::Direct(
      Multiplicity::kSingle, Aggregation::kAggregation,
      JointAccess{false, true, false, false});
  EXPECT_TRUE(IsGranted(policy, "p1", "temperature", agg_qs));
  EXPECT_TRUE(IsGranted(policy, "p6", "beats", agg_qs));
  EXPECT_FALSE(IsGranted(policy, "p2", "temperature", agg_qs));
  EXPECT_FALSE(IsGranted(policy, "p1", "position", agg_qs));
  // Raw access is never granted by this policy.
  const ActionType raw = ActionType::Direct(
      Multiplicity::kSingle, Aggregation::kNoAggregation, JointAccess::None());
  EXPECT_FALSE(IsGranted(policy, "p1", "temperature", raw));
  // Indirect only for p6/temperature.
  const ActionType indirect = ActionType::Indirect(JointAccess::None());
  EXPECT_TRUE(IsGranted(policy, "p6", "temperature", indirect));
  EXPECT_FALSE(IsGranted(policy, "p1", "temperature", indirect));
}

TEST(CoverageTest, TextReportGroupsByPurpose) {
  const std::string text = CoverageToText(FlattenPolicy(TwoRulePolicy()));
  EXPECT_NE(text.find("p1:"), std::string::npos);
  EXPECT_NE(text.find("p6:"), std::string::npos);
  EXPECT_NE(text.find("temperature: direct single aggregate joint(q,s)"),
            std::string::npos);
  EXPECT_NE(text.find("indirect joint(all)"), std::string::npos);
  // p1 has no indirect grant.
  const size_t p1 = text.find("p1:");
  const size_t p6 = text.find("p6:");
  EXPECT_EQ(text.substr(p1, p6 - p1).find("indirect"), std::string::npos);
}

TEST(CoverageTest, EmptyGrants) {
  EXPECT_EQ(CoverageToText({}), "");
}

}  // namespace
}  // namespace aapac::core
