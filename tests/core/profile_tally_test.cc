// Regression coverage for operator-level profile accounting. The profiler
// follows the CheckTally discipline — thread-local tallies, morsel-driver
// folds at operator close — so per-operator check and row counts must be
// identical at any degree of parallelism and under the vector / zone-map
// executor toggles, and the per-op exclusive checks must sum to exactly the
// statement total the audit log records.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/catalog.h"
#include "core/monitor.h"
#include "engine/database.h"
#include "obs/profile.h"
#include "util/task_pool.h"
#include "workload/patients.h"
#include "workload/policies.h"
#include "workload/queries.h"

namespace aapac::core {
namespace {

struct Instance {
  std::unique_ptr<engine::Database> db;
  std::unique_ptr<AccessControlCatalog> catalog;
  std::unique_ptr<EnforcementMonitor> monitor;

  Instance() {
    db = std::make_unique<engine::Database>();
    workload::PatientsConfig config;
    config.num_patients = 30;
    config.samples_per_patient = 40;  // 1200 sensed_data rows.
    EXPECT_TRUE(workload::BuildPatientsDatabase(db.get(), config).ok());
    catalog = std::make_unique<AccessControlCatalog>(db.get());
    EXPECT_TRUE(catalog->Initialize().ok());
    EXPECT_TRUE(workload::ConfigurePatientsAccessControl(catalog.get()).ok());
    workload::ScatteredPolicyConfig sp;
    sp.selectivity = 0.3;
    EXPECT_TRUE(workload::ApplyScatteredPolicies(catalog.get(), sp).ok());
    monitor = std::make_unique<EnforcementMonitor>(db.get(), catalog.get());
  }
};

/// One operator's accounting signature: everything that must be invariant
/// under DOP (time is excluded — it is the one legitimately varying field).
struct OpSig {
  std::string label;
  std::string detail;
  int depth = 0;
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  uint64_t checks = 0;
  uint64_t memo_hits = 0;
  uint64_t memo_misses = 0;
  uint64_t zone_checks = 0;
  uint64_t rows_zone_skipped = 0;

  bool operator==(const OpSig& o) const {
    return label == o.label && detail == o.detail && depth == o.depth &&
           rows_in == o.rows_in && rows_out == o.rows_out &&
           checks == o.checks && memo_hits == o.memo_hits &&
           memo_misses == o.memo_misses && zone_checks == o.zone_checks &&
           rows_zone_skipped == o.rows_zone_skipped;
  }
};

std::vector<OpSig> SignatureOf(const obs::QueryProfile& p) {
  std::vector<OpSig> out;
  for (const auto& op : p.ops) {
    OpSig s;
    s.label = op.label;
    s.detail = op.detail;
    s.depth = op.depth;
    s.rows_in = op.rows_in;
    s.rows_out = op.rows_out;
    s.checks = op.checks;
    s.memo_hits = op.tally.memo_hits;
    s.memo_misses = op.tally.memo_misses;
    s.zone_checks = op.tally.zone_checks;
    s.rows_zone_skipped = op.tally.rows_zone_skipped;
    out.push_back(std::move(s));
  }
  return out;
}

uint64_t SumChecks(const obs::QueryProfile& p) {
  uint64_t sum = 0;
  for (const auto& op : p.ops) sum += op.checks;
  return sum;
}

TEST(ProfileTallyTest, PerOperatorCountsIdenticalAcrossDop) {
  if (!obs::kObsCompiledIn) GTEST_SKIP() << "built with AAPAC_OBS_OFF";
  Instance inst;
  util::TaskPool pool(3);
  for (const auto& q : workload::PaperQueries()) {
    inst.monitor->SetParallelism(nullptr, 1);
    // Warm-up pass: both measured runs then see the same memo/zone state,
    // so hit/miss attribution is comparable rather than cold-vs-warm.
    ASSERT_TRUE(inst.monitor->ExecuteQuery(q.sql, "p3").ok()) << q.name;
    ASSERT_TRUE(inst.monitor->ExecuteQuery(q.sql, "p3").ok()) << q.name;
    auto serial = inst.monitor->profiles()->Last();
    ASSERT_TRUE(serial.ok()) << q.name;
    ASSERT_FALSE(serial->ops.empty()) << q.name;

    inst.monitor->SetParallelism(&pool, 4, /*morsel_rows=*/64);
    ASSERT_TRUE(inst.monitor->ExecuteQuery(q.sql, "p3").ok()) << q.name;
    auto parallel = inst.monitor->profiles()->Last();
    ASSERT_TRUE(parallel.ok()) << q.name;

    EXPECT_NE(serial->id, parallel->id);
    EXPECT_EQ(SignatureOf(*serial), SignatureOf(*parallel))
        << q.name << ": per-operator accounting drifted with DOP";
    EXPECT_EQ(serial->total_checks, parallel->total_checks) << q.name;
  }
}

TEST(ProfileTallyTest, OperatorChecksSumToAuditTotalAtBothDops) {
  if (!obs::kObsCompiledIn) GTEST_SKIP() << "built with AAPAC_OBS_OFF";
  Instance inst;
  ASSERT_TRUE(inst.monitor->EnableAuditLog().ok());
  util::TaskPool pool(3);
  for (const bool parallel : {false, true}) {
    if (parallel) {
      inst.monitor->SetParallelism(&pool, 4, /*morsel_rows=*/64);
    } else {
      inst.monitor->SetParallelism(nullptr, 1);
    }
    for (const auto& q : workload::PaperQueries()) {
      inst.monitor->ResetComplianceChecks();
      ASSERT_TRUE(inst.monitor->ExecuteQuery(q.sql, "p3").ok()) << q.name;
      const uint64_t statement_checks = inst.monitor->compliance_checks();
      auto prof = inst.monitor->profiles()->Last();
      ASSERT_TRUE(prof.ok()) << q.name;
      // Exclusive attribution: the operator checks are a partition of the
      // statement total — the acceptance bar for \analyze output.
      EXPECT_EQ(SumChecks(*prof), statement_checks)
          << q.name << (parallel ? " (dop 4)" : " (dop 1)");
      EXPECT_EQ(prof->total_checks, statement_checks) << q.name;

      // The audit row carries the same checks value and this profile's id.
      auto audit = inst.monitor->ExecuteUnrestricted(
          "select seq, checks, profile from audit_log "
          "order by seq desc limit 1");
      ASSERT_TRUE(audit.ok()) << audit.status();
      ASSERT_EQ(audit->rows.size(), 1u);
      EXPECT_EQ(audit->rows[0][1].ToString(),
                std::to_string(statement_checks))
          << q.name;
      EXPECT_EQ(audit->rows[0][2].ToString(), std::to_string(prof->id))
          << q.name << ": audit profile id does not match the published one";
    }
  }
}

TEST(ProfileTallyTest, CountsStableUnderVectorAndZoneMapToggles) {
  if (!obs::kObsCompiledIn) GTEST_SKIP() << "built with AAPAC_OBS_OFF";
  Instance inst;
  const std::string sql = workload::PaperQueries()[0].sql;
  // Logical check counts must not depend on the executor strategy; rows
  // in/out per operator must match as well (the detail string legitimately
  // differs — it names the strategy — so compare the numeric fields only).
  struct Totals {
    uint64_t checks;
    std::vector<std::pair<uint64_t, uint64_t>> rows;
  };
  std::vector<Totals> runs;
  for (const bool vec : {false, true}) {
    for (const bool zone : {false, true}) {
      inst.monitor->SetVectorEnabled(vec);
      inst.monitor->SetZoneMapEnabled(zone);
      inst.monitor->ResetComplianceChecks();
      ASSERT_TRUE(inst.monitor->ExecuteQuery(sql, "p3").ok());
      auto prof = inst.monitor->profiles()->Last();
      ASSERT_TRUE(prof.ok());
      EXPECT_EQ(SumChecks(*prof), inst.monitor->compliance_checks())
          << "vec=" << vec << " zone=" << zone;
      Totals t;
      t.checks = inst.monitor->compliance_checks();
      for (const auto& op : prof->ops) {
        t.rows.emplace_back(op.rows_in, op.rows_out);
      }
      runs.push_back(std::move(t));
    }
  }
  inst.monitor->SetVectorEnabled(true);
  inst.monitor->SetZoneMapEnabled(true);
  for (size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].checks, runs[0].checks) << "toggle combination " << i;
    EXPECT_EQ(runs[i].rows, runs[0].rows) << "toggle combination " << i;
  }
}

TEST(ProfileTallyTest, LedgerReconcilesWithEnforceCounters) {
  if (!obs::kObsCompiledIn) GTEST_SKIP() << "built with AAPAC_OBS_OFF";
  Instance inst;
  for (const auto& q : workload::PaperQueries()) {
    ASSERT_TRUE(inst.monitor->ExecuteQuery(q.sql, "p3").ok()) << q.name;
  }
  // One denial and one prepare error land in their "-" buckets.
  EXPECT_FALSE(inst.monitor->ExecuteQuery("select 1 from pr", "p99").ok());
  EXPECT_FALSE(inst.monitor->ExecuteQuery("selec nothing", "p3").ok());

  uint64_t checks = 0, allowed = 0, denied = 0, errors = 0, hits = 0,
           misses = 0, skipped = 0, bulk = 0, mixed = 0;
  for (const auto& e : inst.monitor->ledger().Snapshot()) {
    checks += e.checks;
    allowed += e.allowed;
    denied += e.denied;
    errors += e.errors;
    hits += e.tally.memo_hits;
    misses += e.tally.memo_misses;
    skipped += e.tally.blocks_skipped;
    bulk += e.tally.blocks_bulk;
    mixed += e.tally.blocks_mixed;
  }
  // The ledger is fed from the same per-statement deltas as the enforce.*
  // counters, so its column sums reconcile with them exactly.
  const auto& m = inst.monitor->metrics();
  EXPECT_EQ(checks, m->counter("enforce.compliance_checks")->value());
  EXPECT_EQ(allowed, m->counter("enforce.ok")->value());
  EXPECT_EQ(denied, m->counter("enforce.denied")->value());
  EXPECT_EQ(errors, m->counter("enforce.error")->value());
  EXPECT_EQ(hits, m->counter(obs::kVerdictMemoHits)->value());
  EXPECT_EQ(misses, m->counter(obs::kVerdictMemoMisses)->value());
  EXPECT_EQ(skipped, m->counter(obs::kZoneBlocksSkipped)->value());
  EXPECT_EQ(bulk, m->counter(obs::kZoneBlocksBulkAccepted)->value());
  EXPECT_EQ(mixed, m->counter(obs::kZoneBlocksMixed)->value());
  // And the published running totals match the snapshot.
  EXPECT_EQ(inst.monitor->ledger().checks_counter()->load(), checks);
}

TEST(ProfileTallyTest, DisabledProfilingStillCountsChecksExactly) {
  Instance inst;
  const std::string sql = workload::PaperQueries()[0].sql;
  inst.monitor->ResetComplianceChecks();
  ASSERT_TRUE(inst.monitor->ExecuteQuery(sql, "p3").ok());
  const uint64_t expected = inst.monitor->compliance_checks();

  obs::SetProfilingEnabled(false);
  inst.monitor->ResetComplianceChecks();
  ASSERT_TRUE(inst.monitor->ExecuteQuery(sql, "p3").ok());
  obs::SetProfilingEnabled(true);
  // The kill switch drops the profile tree, never the enforcement math.
  EXPECT_EQ(inst.monitor->compliance_checks(), expected);
}

}  // namespace
}  // namespace aapac::core
