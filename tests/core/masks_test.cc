// Mask encoding (§5.3, Defs. 9-14): layouts, rule/policy/action-signature
// masks, decode round trips, pass-all / pass-none constructs.

#include "core/masks.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace aapac::core {
namespace {

MaskLayout SmallLayout() {
  return MaskLayout({"a", "b", "c"}, {"p1", "p2"});
}

/// Paper-scale layout: sensed_data's 5 columns, 8 purposes.
MaskLayout PaperLayout() {
  return MaskLayout({"watch_id", "timestamp", "temperature", "position",
                     "beats"},
                    {"p1", "p2", "p3", "p4", "p5", "p6", "p7", "p8"});
}

TEST(MaskLayoutTest, BitBudget) {
  MaskLayout layout = SmallLayout();
  EXPECT_EQ(layout.unpadded_bits(), 3u + 2u + kActionTypeMaskBits);
  EXPECT_EQ(layout.rule_mask_bits(), 16u);  // Padded to a byte boundary.
  EXPECT_EQ(PaperLayout().unpadded_bits(), 23u);
  EXPECT_EQ(PaperLayout().rule_mask_bits(), 24u);  // §6.3: "24 bits".
  // Exact byte multiples gain no padding.
  MaskLayout exact({"a", "b", "c", "d", "e", "f"},
                   {"p1", "p2", "p3", "p4", "p5", "p6", "p7", "p8"});
  EXPECT_EQ(exact.unpadded_bits(), 24u);
  EXPECT_EQ(exact.rule_mask_bits(), 24u);
}

TEST(MaskLayoutTest, EncodeRuleLayout) {
  MaskLayout layout = SmallLayout();
  PolicyRule rule;
  rule.columns = {"a", "c"};
  rule.purposes = {"p2"};
  rule.action_type = ActionType::Direct(Multiplicity::kMultiple,
                                        Aggregation::kNoAggregation,
                                        JointAccess{false, true, false, true});
  auto mask = layout.EncodeRule(rule);
  ASSERT_TRUE(mask.ok());
  // cols=101 | purposes=01 | action: i=0 d=1 s=0 m=1 a=0 n=1, ja=0101 | pad=0.
  EXPECT_EQ(mask->ToBinary(), "1010101010101010");
}

TEST(MaskLayoutTest, EncodeRuleUnknownColumnOrPurposeFails) {
  MaskLayout layout = SmallLayout();
  PolicyRule rule;
  rule.columns = {"zz"};
  rule.purposes = {"p1"};
  EXPECT_FALSE(layout.EncodeRule(rule).ok());
  rule.columns = {"a"};
  rule.purposes = {"p9"};
  EXPECT_FALSE(layout.EncodeRule(rule).ok());
}

TEST(MaskLayoutTest, ColumnNamesCaseInsensitive) {
  MaskLayout layout({"Watch_ID"}, {"p1"});
  PolicyRule rule;
  rule.columns = {"WATCH_id"};
  rule.purposes = {"p1"};
  rule.action_type = ActionType::Indirect(JointAccess::None());
  EXPECT_TRUE(layout.EncodeRule(rule).ok());
}

TEST(MaskLayoutTest, PolicyMaskConcatenatesRules) {
  MaskLayout layout = SmallLayout();
  Policy policy;
  policy.table = "t";
  PolicyRule r;
  r.columns = {"a"};
  r.purposes = {"p1"};
  r.action_type = ActionType::Indirect(JointAccess::None());
  policy.rules = {r, r, r};
  auto mask = layout.EncodePolicy(policy);
  ASSERT_TRUE(mask.ok());
  EXPECT_EQ(mask->size(), 3 * layout.rule_mask_bits());
  auto split = layout.SplitPolicyMask(*mask);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->size(), 3u);
  EXPECT_EQ((*split)[0], (*split)[2]);
}

TEST(MaskLayoutTest, EmptyPolicyRejected) {
  Policy policy;
  policy.table = "t";
  EXPECT_FALSE(SmallLayout().EncodePolicy(policy).ok());
}

TEST(MaskLayoutTest, SplitRejectsMisalignedMasks) {
  MaskLayout layout = SmallLayout();
  EXPECT_FALSE(layout.SplitPolicyMask(BitString(10)).ok());
  EXPECT_TRUE(layout.SplitPolicyMask(BitString(32)).ok());
}

TEST(MaskLayoutTest, ActionSignatureSharesRuleLayout) {
  MaskLayout layout = SmallLayout();
  ActionSignature sig;
  sig.columns = {"b"};
  sig.action_type = ActionType::Indirect(JointAccess{true, false, false, false});
  auto mask = layout.EncodeActionSignature(sig, "p1");
  ASSERT_TRUE(mask.ok());
  EXPECT_EQ(mask->size(), layout.rule_mask_bits());
  // cols=010 purposes=10 action=1000001000 pad=0.
  EXPECT_EQ(mask->ToBinary(), "0101010000010000");
}

TEST(MaskLayoutTest, PassAllPassNone) {
  MaskLayout layout = SmallLayout();
  EXPECT_TRUE(layout.PassAllRuleMask().AllOnes());
  EXPECT_TRUE(layout.PassNoneRuleMask().AllZeros());
  EXPECT_EQ(layout.PassAllRuleMask().size(), layout.rule_mask_bits());
}

TEST(MaskLayoutTest, DecodeInverseOfEncode) {
  MaskLayout layout = PaperLayout();
  PolicyRule rule;
  rule.columns = {"temperature", "beats"};
  rule.purposes = {"p1", "p3", "p4", "p6"};
  rule.action_type = ActionType::Direct(Multiplicity::kSingle,
                                        Aggregation::kNoAggregation,
                                        JointAccess{false, false, true, false});
  auto mask = layout.EncodeRule(rule);
  ASSERT_TRUE(mask.ok());
  auto decoded = layout.DecodeRule(*mask);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->columns, rule.columns);
  EXPECT_EQ(decoded->purposes, rule.purposes);
  EXPECT_EQ(decoded->action_type, rule.action_type);
}

TEST(MaskLayoutTest, DecodeRejectsWrongLength) {
  EXPECT_FALSE(SmallLayout().DecodeRule(BitString(8)).ok());
}

class MaskRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MaskRoundTrip, RandomWellFormedRulesSurvive) {
  Rng rng(GetParam());
  MaskLayout layout = PaperLayout();
  for (int trial = 0; trial < 50; ++trial) {
    PolicyRule rule;
    for (const auto& c : layout.columns()) {
      if (rng.NextBool()) rule.columns.insert(c);
    }
    if (rule.columns.empty()) rule.columns.insert("beats");
    for (const auto& p : layout.purposes()) {
      if (rng.NextBool()) rule.purposes.insert(p);
    }
    if (rule.purposes.empty()) rule.purposes.insert("p1");
    if (rng.NextBool()) {
      rule.action_type = ActionType::Indirect(
          JointAccess{rng.NextBool(), rng.NextBool(), rng.NextBool(),
                      rng.NextBool()});
    } else {
      rule.action_type = ActionType::Direct(
          rng.NextBool() ? Multiplicity::kSingle : Multiplicity::kMultiple,
          rng.NextBool() ? Aggregation::kAggregation
                         : Aggregation::kNoAggregation,
          JointAccess{rng.NextBool(), rng.NextBool(), rng.NextBool(),
                      rng.NextBool()});
    }
    auto mask = layout.EncodeRule(rule);
    ASSERT_TRUE(mask.ok());
    auto decoded = layout.DecodeRule(*mask);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->columns, rule.columns);
    EXPECT_EQ(decoded->purposes, rule.purposes);
    EXPECT_EQ(decoded->action_type.indirection, rule.action_type.indirection);
    EXPECT_EQ(decoded->action_type.joint_access,
              rule.action_type.joint_access);
    if (rule.action_type.indirection == Indirection::kDirect) {
      EXPECT_EQ(decoded->action_type.multiplicity,
                rule.action_type.multiplicity);
      EXPECT_EQ(decoded->action_type.aggregation,
                rule.action_type.aggregation);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaskRoundTrip,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21));

}  // namespace
}  // namespace aapac::core
