// Policy Management module: validation, attachment selectors, raw mask
// writes, and re-encoding after purpose-set / schema changes.

#include "core/policy_manager.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/compliance.h"
#include "core/masks.h"
#include "core/monitor.h"
#include "workload/patients.h"

namespace aapac::core {
namespace {

using engine::Value;

class PolicyManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<engine::Database>();
    workload::PatientsConfig config;
    config.num_patients = 4;
    config.samples_per_patient = 3;
    ASSERT_TRUE(workload::BuildPatientsDatabase(db_.get(), config).ok());
    catalog_ = std::make_unique<AccessControlCatalog>(db_.get());
    ASSERT_TRUE(catalog_->Initialize().ok());
    ASSERT_TRUE(workload::ConfigurePatientsAccessControl(catalog_.get()).ok());
    manager_ = std::make_unique<PolicyManager>(catalog_.get());
  }

  Policy UsersPolicy(std::set<std::string> purposes = {"p1"}) {
    Policy policy;
    policy.table = "users";
    PolicyRule direct;
    direct.columns = {"user_id", "watch_id", "nutritional_profile_id"};
    direct.purposes = purposes;
    direct.action_type = ActionType::Direct(Multiplicity::kSingle,
                                            Aggregation::kNoAggregation,
                                            JointAccess::All());
    PolicyRule indirect = direct;
    indirect.action_type = ActionType::Indirect(JointAccess::All());
    policy.rules = {direct, indirect};
    return policy;
  }

  /// Rows of `table` whose policy mask is non-null.
  size_t RowsWithPolicy(const std::string& table) {
    engine::Table* t = db_->FindTable(table);
    auto col = t->schema().FindColumn("policy");
    size_t n = 0;
    for (size_t i = 0; i < t->num_rows(); ++i) {
      if (!t->row(i)[*col].is_null()) ++n;
    }
    return n;
  }

  std::unique_ptr<engine::Database> db_;
  std::unique_ptr<AccessControlCatalog> catalog_;
  std::unique_ptr<PolicyManager> manager_;
};

TEST_F(PolicyManagerTest, ValidateRejectsBadPolicies) {
  Policy policy = UsersPolicy();
  policy.table = "pr";  // Unprotected.
  EXPECT_EQ(manager_->ValidatePolicy(policy).code(),
            StatusCode::kInvalidArgument);

  policy = UsersPolicy();
  policy.rules.clear();
  EXPECT_FALSE(manager_->ValidatePolicy(policy).ok());

  policy = UsersPolicy();
  policy.rules[0].columns = {};
  EXPECT_FALSE(manager_->ValidatePolicy(policy).ok());

  policy = UsersPolicy();
  policy.rules[0].columns.insert("nope");
  EXPECT_EQ(manager_->ValidatePolicy(policy).code(), StatusCode::kNotFound);

  policy = UsersPolicy();
  policy.rules[0].purposes = {"p99"};
  EXPECT_EQ(manager_->ValidatePolicy(policy).code(), StatusCode::kNotFound);

  policy = UsersPolicy();
  policy.rules[0].columns.insert("policy");
  EXPECT_FALSE(manager_->ValidatePolicy(policy).ok());

  EXPECT_TRUE(manager_->ValidatePolicy(UsersPolicy()).ok());
}

TEST_F(PolicyManagerTest, AttachToTableCoversEveryTuple) {
  ASSERT_TRUE(manager_->AttachToTable(UsersPolicy()).ok());
  EXPECT_EQ(RowsWithPolicy("users"), 4u);
  EXPECT_EQ(manager_->attachments().size(), 1u);
}

TEST_F(PolicyManagerTest, AttachWhereCoversMatchingTuples) {
  Policy policy = UsersPolicy();
  ASSERT_TRUE(
      manager_->AttachWhere(policy, "user_id", Value::String("user1")).ok());
  EXPECT_EQ(RowsWithPolicy("users"), 1u);
  // The per-watch pattern of the paper's experiments.
  Policy sensed;
  sensed.table = "sensed_data";
  PolicyRule r;
  r.columns = {"watch_id", "timestamp", "temperature", "position", "beats"};
  r.purposes = {"p1"};
  r.action_type = ActionType::Indirect(JointAccess::All());
  sensed.rules = {r};
  ASSERT_TRUE(
      manager_->AttachWhere(sensed, "watch_id", Value::String("watch2")).ok());
  EXPECT_EQ(RowsWithPolicy("sensed_data"), 3u);  // 3 samples per patient.
}

TEST_F(PolicyManagerTest, AttachWhereUnknownSelectorColumn) {
  EXPECT_EQ(manager_->AttachWhere(UsersPolicy(), "nope", Value::Int(1)).code(),
            StatusCode::kNotFound);
}

TEST_F(PolicyManagerTest, WriteMaskToRow) {
  auto layout = catalog_->LayoutFor("users");
  const std::string mask = layout->PassAllRuleMask().ToBytes();
  ASSERT_TRUE(manager_->WriteMaskToRow("users", 2, mask).ok());
  EXPECT_EQ(RowsWithPolicy("users"), 1u);
  EXPECT_FALSE(manager_->WriteMaskToRow("users", 99, mask).ok());
  EXPECT_FALSE(manager_->WriteMaskToRow("pr", 0, mask).ok());
}

TEST_F(PolicyManagerTest, EncodedMaskActuallyComplies) {
  ASSERT_TRUE(manager_->AttachToTable(UsersPolicy({"p1", "p6"})).ok());
  engine::Table* users = db_->FindTable("users");
  auto col = users->schema().FindColumn("policy");
  auto layout = catalog_->LayoutFor("users");
  ActionSignature sig;
  sig.columns = {"user_id"};
  sig.action_type = ActionType::Direct(Multiplicity::kSingle,
                                       Aggregation::kNoAggregation,
                                       JointAccess{false, true, false, false});
  const std::string asm_p1 =
      layout->EncodeActionSignature(sig, "p1")->ToBytes();
  const std::string asm_p2 =
      layout->EncodeActionSignature(sig, "p2")->ToBytes();
  const std::string& policy_bytes = users->row(0)[*col].AsBytes();
  EXPECT_TRUE(CompliesWithPacked(asm_p1, policy_bytes));
  EXPECT_FALSE(CompliesWithPacked(asm_p2, policy_bytes));
}

TEST_F(PolicyManagerTest, ReapplyAllAfterPurposeChange) {
  ASSERT_TRUE(manager_->AttachToTable(UsersPolicy()).ok());
  EnforcementMonitor monitor(db_.get(), catalog_.get());
  auto rs = monitor.ExecuteQuery("select user_id from users", "p1");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 4u);

  // New purpose invalidates the encoded masks until re-application.
  ASSERT_TRUE(catalog_->DefinePurpose("p0", "archive").ok());
  rs = monitor.ExecuteQuery("select user_id from users", "p1");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 0u);  // Stale masks deny (fail-closed).
  ASSERT_TRUE(manager_->ReapplyAll().ok());
  rs = monitor.ExecuteQuery("select user_id from users", "p1");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 4u);
}

TEST_F(PolicyManagerTest, ReapplyAllAfterSchemaChange) {
  ASSERT_TRUE(manager_->AttachToTable(UsersPolicy()).ok());
  engine::Table* users = db_->FindTable("users");
  ASSERT_TRUE(users->AddColumn({"room", engine::ValueType::kString},
                               Value::Null())
                  .ok());
  ASSERT_TRUE(manager_->ReapplyAll().ok());
  EnforcementMonitor monitor(db_.get(), catalog_.get());
  auto rs = monitor.ExecuteQuery("select user_id from users", "p1");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 4u);
}

TEST_F(PolicyManagerTest, ClearAttachments) {
  ASSERT_TRUE(manager_->AttachToTable(UsersPolicy()).ok());
  Policy sensed;
  sensed.table = "sensed_data";
  PolicyRule r;
  r.columns = {"beats"};
  r.purposes = {"p1"};
  r.action_type = ActionType::Indirect(JointAccess::All());
  sensed.rules = {r};
  ASSERT_TRUE(manager_->AttachToTable(sensed).ok());
  EXPECT_EQ(manager_->attachments().size(), 2u);
  manager_->ClearAttachments("users");
  EXPECT_EQ(manager_->attachments().size(), 1u);
  EXPECT_EQ(manager_->attachments()[0].policy.table, "sensed_data");
}

}  // namespace
}  // namespace aapac::core
