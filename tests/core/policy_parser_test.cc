// The textual policy language: parsing, validation, rendering round trips.

#include "core/policy_parser.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/policy_manager.h"
#include "workload/patients.h"

namespace aapac::core {
namespace {

class PolicyParserTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<engine::Database>();
    workload::PatientsConfig config;
    config.num_patients = 2;
    config.samples_per_patient = 2;
    ASSERT_TRUE(workload::BuildPatientsDatabase(db_.get(), config).ok());
    catalog_ = std::make_unique<AccessControlCatalog>(db_.get());
    ASSERT_TRUE(catalog_->Initialize().ok());
    ASSERT_TRUE(workload::ConfigurePatientsAccessControl(catalog_.get()).ok());
  }

  Result<Policy> Parse(const std::string& table, const std::string& text) {
    return ParsePolicyText(*catalog_, table, text);
  }

  std::unique_ptr<engine::Database> db_;
  std::unique_ptr<AccessControlCatalog> catalog_;
};

TEST_F(PolicyParserTest, SingleDirectRule) {
  auto policy = Parse(
      "sensed_data",
      "allow p1, p3 direct single aggregate on temperature, beats joint(s)");
  ASSERT_TRUE(policy.ok()) << policy.status();
  ASSERT_EQ(policy->rules.size(), 1u);
  const PolicyRule& rule = policy->rules[0];
  EXPECT_EQ(rule.purposes, (std::set<std::string>{"p1", "p3"}));
  EXPECT_EQ(rule.columns, (std::set<std::string>{"temperature", "beats"}));
  EXPECT_EQ(rule.action_type.indirection, Indirection::kDirect);
  EXPECT_EQ(*rule.action_type.multiplicity, Multiplicity::kSingle);
  EXPECT_EQ(*rule.action_type.aggregation, Aggregation::kAggregation);
  EXPECT_EQ(rule.action_type.joint_access,
            (JointAccess{false, false, true, false}));
}

TEST_F(PolicyParserTest, IndirectRuleAndDefaults) {
  auto policy = Parse("sensed_data", "allow p6 indirect on *");
  ASSERT_TRUE(policy.ok()) << policy.status();
  const PolicyRule& rule = policy->rules[0];
  EXPECT_EQ(rule.action_type.indirection, Indirection::kIndirect);
  EXPECT_EQ(rule.columns.size(), 5u);              // All non-policy columns.
  EXPECT_EQ(rule.columns.count("policy"), 0u);
  EXPECT_EQ(rule.action_type.joint_access, JointAccess::All());  // Default.
}

TEST_F(PolicyParserTest, PurposesByDescription) {
  auto policy = Parse("users", "allow research, treatment indirect on *");
  ASSERT_TRUE(policy.ok()) << policy.status();
  EXPECT_EQ(policy->rules[0].purposes, (std::set<std::string>{"p1", "p6"}));
}

TEST_F(PolicyParserTest, MultipleRulesAndTrailingSemicolon) {
  auto policy = Parse("sensed_data",
                      "allow p1 direct multiple raw on beats joint(none);"
                      "allow p2 indirect on watch_id joint(i, q);");
  ASSERT_TRUE(policy.ok()) << policy.status();
  ASSERT_EQ(policy->rules.size(), 2u);
  EXPECT_EQ(policy->rules[0].action_type.joint_access, JointAccess::None());
  EXPECT_EQ(policy->rules[1].action_type.joint_access,
            (JointAccess{true, true, false, false}));
}

TEST_F(PolicyParserTest, Errors) {
  EXPECT_FALSE(Parse("sensed_data", "").ok());
  EXPECT_FALSE(Parse("sensed_data", "deny p1 indirect on *").ok());
  EXPECT_FALSE(Parse("sensed_data", "allow p99 indirect on *").ok());
  EXPECT_FALSE(Parse("sensed_data", "allow p1 sideways on *").ok());
  EXPECT_FALSE(Parse("sensed_data", "allow p1 direct single on *").ok());
  EXPECT_FALSE(Parse("sensed_data", "allow p1 indirect on nope").ok());
  EXPECT_FALSE(Parse("sensed_data", "allow p1 indirect on * joint(x)").ok());
  EXPECT_FALSE(Parse("sensed_data", "allow p1 indirect on * junk").ok());
  EXPECT_FALSE(Parse("missing_table", "allow p1 indirect on *").ok());
}

TEST_F(PolicyParserTest, TextRoundTrip) {
  const char* texts[] = {
      "allow p1, p3 direct single aggregate on beats, temperature joint("
      "sensitive)",
      "allow p6 indirect on position joint(all)",
      "allow p2 direct multiple raw on watch_id joint(none)",
  };
  for (const char* text : texts) {
    auto policy = Parse("sensed_data", text);
    ASSERT_TRUE(policy.ok()) << text;
    auto reparsed = Parse("sensed_data", PolicyToText(*policy));
    ASSERT_TRUE(reparsed.ok()) << PolicyToText(*policy);
    EXPECT_EQ(PolicyToText(*reparsed), PolicyToText(*policy));
  }
}

TEST_F(PolicyParserTest, ParsedPolicyPassesValidation) {
  auto policy = Parse("users",
                      "allow p1 direct single raw on user_id, watch_id, "
                      "nutritional_profile_id; allow p1 indirect on *");
  ASSERT_TRUE(policy.ok());
  PolicyManager manager(catalog_.get());
  EXPECT_TRUE(manager.ValidatePolicy(*policy).ok());
}

}  // namespace
}  // namespace aapac::core
