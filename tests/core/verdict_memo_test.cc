// Property coverage for per-query verdict memoization (the policy-interning
// dictionary's executor side): a memoized compliance conjunct must be a pure
// cache over complies_with. Randomized policies x randomized queries are
// executed with the verdict table forced off (every tuple through the full
// CompliesWithPacked sweep) and on, asserting row-for-row identical results
// and identical logical check counts — memo hits bump the Fig. 6 tally
// exactly like computed checks. A morsel-parallel leg shares one verdict
// table across worker threads (TSan covers it in CI), and an accounting
// test pins hits + misses to the logical check count when every stored
// policy is interned.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/catalog.h"
#include "core/monitor.h"
#include "engine/database.h"
#include "obs/metrics.h"
#include "tests/util/query_gen.h"
#include "util/task_pool.h"
#include "workload/patients.h"
#include "workload/policies.h"
#include "workload/queries.h"

namespace aapac::core {
namespace {

std::string RenderRows(const engine::ResultSet& rs) {
  std::string out;
  for (const auto& row : rs.rows) {
    for (const auto& v : row) {
      out += v.is_null() ? "NULL" : v.ToString();
      out += '|';
    }
    out += '\n';
  }
  return out;
}

struct Instance {
  std::unique_ptr<engine::Database> db;
  std::unique_ptr<AccessControlCatalog> catalog;
  std::unique_ptr<EnforcementMonitor> monitor;

  explicit Instance(uint64_t policy_seed, double selectivity) {
    db = std::make_unique<engine::Database>();
    workload::PatientsConfig config;
    config.num_patients = 30;
    config.samples_per_patient = 40;  // 1200 sensed_data rows.
    EXPECT_TRUE(workload::BuildPatientsDatabase(db.get(), config).ok());
    catalog = std::make_unique<AccessControlCatalog>(db.get());
    EXPECT_TRUE(catalog->Initialize().ok());
    EXPECT_TRUE(workload::ConfigurePatientsAccessControl(catalog.get()).ok());
    workload::ScatteredPolicyConfig sp;
    sp.seed = policy_seed;
    sp.selectivity = selectivity;
    EXPECT_TRUE(workload::ApplyScatteredPolicies(catalog.get(), sp).ok());
    monitor = std::make_unique<EnforcementMonitor>(db.get(), catalog.get());
  }
};

/// Runs `sql` under `purpose` and returns (rendered rows, checks spent).
std::pair<std::string, uint64_t> RunQuery(EnforcementMonitor* monitor,
                                     const std::string& sql,
                                     const std::string& purpose) {
  const uint64_t before = monitor->compliance_checks();
  auto rs = monitor->ExecuteQuery(sql, purpose);
  EXPECT_TRUE(rs.ok()) << sql << "\n  " << rs.status();
  if (!rs.ok()) return {"<error>", 0};
  return {RenderRows(*rs), monitor->compliance_checks() - before};
}

TEST(VerdictMemoTest, RandomQueriesAgreeWithDirectChecksAtEqualCount) {
  // Three policy distributions (varying seed and selectivity) x 50 random
  // queries each; results and logical check counts must be invariant under
  // the memo toggle.
  const struct {
    uint64_t seed;
    double selectivity;
  } kDists[] = {{11, 0.0}, {22, 0.35}, {33, 0.6}};
  for (const auto& dist : kDists) {
    Instance inst(dist.seed, dist.selectivity);
    testutil::QueryGenerator gen(/*seed=*/dist.seed * 7919);
    for (size_t i = 0; i < 50; ++i) {
      const testutil::GenQuery q = gen.Next();
      const std::string ctx = "policy_seed=" + std::to_string(dist.seed) +
                              " query#" + std::to_string(i) + " sql=" + q.sql;

      inst.monitor->SetVerdictMemoEnabled(false);
      const auto direct = RunQuery(inst.monitor.get(), q.sql, q.purpose);
      inst.monitor->SetVerdictMemoEnabled(true);
      const auto memoized = RunQuery(inst.monitor.get(), q.sql, q.purpose);

      ASSERT_EQ(memoized.first, direct.first) << ctx;
      ASSERT_EQ(memoized.second, direct.second)
          << ctx << "\n  memoization changed the logical check count";
    }
  }
}

TEST(VerdictMemoTest, ParallelSharedVerdictTableMatchesSerialDirect) {
  // Morsel workers fill and read one verdict table concurrently; results
  // and check accounting must equal the serial un-memoized reference.
  Instance inst(/*policy_seed=*/7, /*selectivity=*/0.35);
  util::TaskPool pool(3);
  for (const auto& q : workload::PaperQueries()) {
    inst.monitor->SetParallelism(nullptr, 1);
    inst.monitor->SetVerdictMemoEnabled(false);
    const auto reference = RunQuery(inst.monitor.get(), q.sql, "p3");

    inst.monitor->SetVerdictMemoEnabled(true);
    inst.monitor->SetParallelism(&pool, 4, /*morsel_rows=*/64);
    const auto parallel = RunQuery(inst.monitor.get(), q.sql, "p3");
    inst.monitor->SetParallelism(nullptr, 1);

    ASSERT_EQ(parallel.first, reference.first) << q.name;
    ASSERT_EQ(parallel.second, reference.second) << q.name;
  }
}

TEST(VerdictMemoTest, HitsPlusMissesAccountForEveryCheckOnInternedPolicies) {
  // Scattered policies intern every stored mask, so each compliance check at
  // a memoized call site is either a memo hit or a memo fill — the two
  // counters must partition the logical count exactly.
  Instance inst(/*policy_seed=*/5, /*selectivity=*/0.2);
  auto* metrics = inst.monitor->metrics().get();
  const std::string sql = "SELECT user_id FROM users";

  const uint64_t hits0 = metrics->counter(obs::kVerdictMemoHits)->value();
  const uint64_t miss0 = metrics->counter(obs::kVerdictMemoMisses)->value();
  const auto run = RunQuery(inst.monitor.get(), sql, "p3");
  const uint64_t hits = metrics->counter(obs::kVerdictMemoHits)->value() - hits0;
  const uint64_t misses =
      metrics->counter(obs::kVerdictMemoMisses)->value() - miss0;

  ASSERT_GT(run.second, 0u);
  EXPECT_EQ(hits + misses, run.second);
  // The users table holds far fewer distinct masks than rows, so the table
  // must have answered most checks from memo.
  EXPECT_GT(hits, misses);

  // With the memo disabled neither counter moves.
  inst.monitor->SetVerdictMemoEnabled(true);
  const uint64_t hits1 = metrics->counter(obs::kVerdictMemoHits)->value();
  inst.monitor->SetVerdictMemoEnabled(false);
  (void)RunQuery(inst.monitor.get(), sql, "p3");
  inst.monitor->SetVerdictMemoEnabled(true);
  EXPECT_EQ(metrics->counter(obs::kVerdictMemoHits)->value(), hits1);
}

}  // namespace
}  // namespace aapac::core
