// Executable versions of the paper's worked Examples 1-7 (§4), beyond the
// Fig. 3 pipeline already covered by fig3_worked_example_test.cc.

#include <gtest/gtest.h>

#include <memory>

#include "core/catalog.h"
#include "core/compliance.h"
#include "core/monitor.h"
#include "core/policy_manager.h"
#include "core/signature_builder.h"
#include "sql/parser.h"
#include "workload/patients.h"

namespace aapac::core {
namespace {

using engine::Value;

class PaperExamplesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<engine::Database>();
    workload::PatientsConfig config;
    config.num_patients = 10;
    config.samples_per_patient = 5;
    ASSERT_TRUE(workload::BuildPatientsDatabase(db_.get(), config).ok());
    catalog_ = std::make_unique<AccessControlCatalog>(db_.get());
    ASSERT_TRUE(catalog_->Initialize().ok());
    ASSERT_TRUE(workload::ConfigurePatientsAccessControl(catalog_.get()).ok());
    manager_ = std::make_unique<PolicyManager>(catalog_.get());
    monitor_ = std::make_unique<EnforcementMonitor>(db_.get(), catalog_.get());
  }

  std::unique_ptr<engine::Database> db_;
  std::unique_ptr<AccessControlCatalog> catalog_;
  std::unique_ptr<PolicyManager> manager_;
  std::unique_ptr<EnforcementMonitor> monitor_;
};

// Example 1: Bob allows only the *indirect* access to diet_type of his
// nutritional_profile tuple. q1 (diet_type used for filtering) complies;
// q2 (select *, a direct access to diet_type) does not.
TEST_F(PaperExamplesTest, Example1IndirectOnlyDietType) {
  Policy policy;
  policy.table = "nutritional_profiles";
  PolicyRule indirect_diet;
  indirect_diet.columns = {"diet_type", "profile_id", "food_intolerances",
                           "food_preferences"};
  indirect_diet.purposes = {"p1"};
  indirect_diet.action_type = ActionType::Indirect(JointAccess::All());
  PolicyRule direct_rest;  // Direct access everywhere EXCEPT diet_type.
  direct_rest.columns = {"profile_id", "food_intolerances",
                         "food_preferences"};
  direct_rest.purposes = {"p1"};
  direct_rest.action_type = ActionType::Direct(Multiplicity::kSingle,
                                               Aggregation::kNoAggregation,
                                               JointAccess::All());
  policy.rules = {indirect_diet, direct_rest};
  ASSERT_TRUE(manager_
                  ->AttachWhere(policy, "profile_id",
                                Value::String("profile0"))
                  .ok());

  // q1: diet_type only filters -> Bob's tuple may contribute.
  auto q1 = monitor_->ExecuteQuery(
      "select food_intolerances from nutritional_profiles "
      "where profile_id like 'profile0'",
      "p1");
  ASSERT_TRUE(q1.ok()) << q1.status();
  EXPECT_EQ(q1->rows.size(), 1u);
  q1 = monitor_->ExecuteQuery(
      "select food_intolerances from nutritional_profiles "
      "where profile_id like 'profile0' and diet_type is not null",
      "p1");
  ASSERT_TRUE(q1.ok());
  EXPECT_EQ(q1->rows.size(), 1u);

  // q2: select * shows diet_type directly -> Bob's tuple is excluded.
  auto q2 = monitor_->ExecuteQuery(
      "select * from nutritional_profiles where profile_id like 'profile0'",
      "p1");
  ASSERT_TRUE(q2.ok()) << q2.status();
  EXPECT_TRUE(q2->rows.empty());
}

// Example 2: direct access to temperature only from multiple sources. The
// derived-variation query (temperature - avg(temperature)) complies; a bare
// temperature projection does not.
TEST_F(PaperExamplesTest, Example2MultipleSourcesOnly) {
  Policy policy;
  policy.table = "sensed_data";
  PolicyRule multiple_only;
  multiple_only.columns = {"temperature", "timestamp"};
  multiple_only.purposes = {"p1"};
  multiple_only.action_type = ActionType::Direct(Multiplicity::kMultiple,
                                                 Aggregation::kNoAggregation,
                                                 JointAccess::All());
  PolicyRule multiple_agg = multiple_only;
  multiple_agg.action_type = ActionType::Direct(
      Multiplicity::kMultiple, Aggregation::kAggregation, JointAccess::All());
  PolicyRule indirect;
  indirect.columns = {"watch_id", "timestamp", "temperature", "position",
                      "beats"};
  indirect.purposes = {"p1"};
  indirect.action_type = ActionType::Indirect(JointAccess::All());
  PolicyRule direct_timestamp;  // timestamp alone may be shown.
  direct_timestamp.columns = {"timestamp"};
  direct_timestamp.purposes = {"p1"};
  direct_timestamp.action_type = ActionType::Direct(
      Multiplicity::kSingle, Aggregation::kNoAggregation, JointAccess::All());
  policy.rules = {multiple_only, multiple_agg, indirect, direct_timestamp};
  ASSERT_TRUE(manager_
                  ->AttachWhere(policy, "watch_id", Value::String("watch0"))
                  .ok());

  auto combined = monitor_->ExecuteQuery(
      "select temperature - avg(temperature), timestamp from sensed_data "
      "where watch_id like 'watch0' group by temperature, timestamp",
      "p1");
  ASSERT_TRUE(combined.ok()) << combined.status();
  EXPECT_EQ(combined->rows.size(), 5u);

  auto bare = monitor_->ExecuteQuery(
      "select temperature from sensed_data where watch_id like 'watch0'",
      "p1");
  ASSERT_TRUE(bare.ok());
  EXPECT_TRUE(bare->rows.empty());
}

// Example 3: direct access with aggregation to temperature — avg() flows,
// raw values do not.
TEST_F(PaperExamplesTest, Example3AggregationOnly) {
  Policy policy;
  policy.table = "sensed_data";
  PolicyRule agg;
  agg.columns = {"temperature"};
  agg.purposes = {"p1"};
  agg.action_type = ActionType::Direct(
      Multiplicity::kSingle, Aggregation::kAggregation, JointAccess::All());
  PolicyRule indirect;
  indirect.columns = {"watch_id", "timestamp", "temperature", "position",
                      "beats"};
  indirect.purposes = {"p1"};
  indirect.action_type = ActionType::Indirect(JointAccess::All());
  policy.rules = {agg, indirect};
  ASSERT_TRUE(manager_->AttachToTable(policy).ok());

  auto avg = monitor_->ExecuteQuery(
      "select avg(temperature) from sensed_data", "p1");
  ASSERT_TRUE(avg.ok());
  ASSERT_EQ(avg->rows.size(), 1u);
  EXPECT_FALSE(avg->rows[0][0].is_null());

  auto raw = monitor_->ExecuteQuery("select temperature from sensed_data",
                                    "p1");
  ASSERT_TRUE(raw.ok());
  EXPECT_TRUE(raw->rows.empty());
}

// Example 4/Example 7: rule r2's action type <d,s,a,<a,a,a,n>> accepts the
// signature <d,s,a,<a,a,n,n>> derived in Example 6 (joint access subset),
// but rejects a generic joint access.
TEST_F(PaperExamplesTest, Example7ActionTypeCompliance) {
  const ActionType rule_type = ActionType::Direct(
      Multiplicity::kSingle, Aggregation::kAggregation,
      JointAccess{true, true, true, false});
  const ActionType sig_type = ActionType::Direct(
      Multiplicity::kSingle, Aggregation::kAggregation,
      JointAccess{true, true, false, false});
  EXPECT_TRUE(ActionTypeComplies(sig_type, rule_type));
  ActionType generic = sig_type;
  generic.joint_access.generic = true;
  EXPECT_FALSE(ActionTypeComplies(generic, rule_type));
}

// Example 5/6: the joint-access component of the avg(temperature) query is
// the union of the categories of the other accessed attributes —
// {identifier, quasi identifier} -> <a,a,n,n>.
TEST_F(PaperExamplesTest, Example5JointAccessDerivation) {
  auto stmt = sql::ParseSelect(
      "select avg(temperature) from sensed_data s join users u on "
      "s.watch_id=u.watch_id where u.user_id like 'Bob'");
  ASSERT_TRUE(stmt.ok());
  SignatureBuilder builder(catalog_.get());
  auto qs = builder.Derive(**stmt, "p6");
  ASSERT_TRUE(qs.ok()) << qs.status();
  const TableSignature* sensed = nullptr;
  for (const auto& ts : (*qs)->tables) {
    if (ts.binding == "s") sensed = &ts;
  }
  ASSERT_NE(sensed, nullptr);
  const ActionSignature* temp = nullptr;
  for (const auto& as : sensed->actions) {
    if (as.columns.count("temperature") > 0 &&
        as.action_type.indirection == Indirection::kDirect) {
      temp = &as;
    }
  }
  ASSERT_NE(temp, nullptr);
  EXPECT_EQ(*temp->action_type.multiplicity, Multiplicity::kSingle);
  EXPECT_EQ(*temp->action_type.aggregation, Aggregation::kAggregation);
  EXPECT_EQ(temp->action_type.joint_access,
            (JointAccess{true, true, false, false}));
}

// Example 13: the action signature mask of Example 6's temperature access.
TEST_F(PaperExamplesTest, Example13ActionSignatureMask) {
  auto layout = catalog_->LayoutFor("sensed_data");
  ASSERT_TRUE(layout.ok());
  ActionSignature as;
  as.columns = {"temperature"};
  as.action_type = ActionType::Direct(
      Multiplicity::kSingle, Aggregation::kAggregation,
      JointAccess{true, true, false, false});
  auto mask = layout->EncodeActionSignature(as, "p6");
  ASSERT_TRUE(mask.ok());
  // Columns 00100 | purposes 00000100 (p6) | action 0110101100 | pad 0.
  EXPECT_EQ(mask->ToBinary(), "001000000010001101011000");
}

}  // namespace
}  // namespace aapac::core
