// AccessControlCatalog::version(): every successful security-metadata
// mutation bumps the counter exactly once, and failed mutations leave it
// untouched. The server's rewrite cache keys entry validity off this
// counter, so over-counting makes caching useless and under-counting
// serves stale rewrites.

#include "core/catalog.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/policy_manager.h"
#include "workload/patients.h"

namespace aapac::core {
namespace {

class CatalogVersionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<engine::Database>();
    workload::PatientsConfig config;
    config.num_patients = 3;
    config.samples_per_patient = 2;
    ASSERT_TRUE(workload::BuildPatientsDatabase(db_.get(), config).ok());
    catalog_ = std::make_unique<AccessControlCatalog>(db_.get());
    ASSERT_TRUE(catalog_->Initialize().ok());
  }

  /// Runs `fn` and returns how much the version moved.
  template <typename Fn>
  uint64_t Delta(Fn&& fn) {
    const uint64_t before = catalog_->version();
    fn();
    return catalog_->version() - before;
  }

  std::unique_ptr<engine::Database> db_;
  std::unique_ptr<AccessControlCatalog> catalog_;
};

TEST_F(CatalogVersionTest, PurposeMutationsBumpOnce) {
  EXPECT_EQ(Delta([&] { ASSERT_TRUE(catalog_->DefinePurpose("p1", "t").ok()); }),
            1u);
  // Duplicate definition fails and must not bump.
  EXPECT_EQ(Delta([&] { EXPECT_FALSE(catalog_->DefinePurpose("p1", "t").ok()); }),
            0u);
  EXPECT_EQ(Delta([&] { ASSERT_TRUE(catalog_->RemovePurpose("p1").ok()); }), 1u);
  EXPECT_EQ(Delta([&] { EXPECT_FALSE(catalog_->RemovePurpose("p1").ok()); }),
            0u);
}

TEST_F(CatalogVersionTest, CategorizeBumpsOnce) {
  EXPECT_EQ(Delta([&] {
              ASSERT_TRUE(catalog_
                              ->Categorize("users", "user_id",
                                           DataCategory::kIdentifier)
                              .ok());
            }),
            1u);
  // Unknown column fails without a bump.
  EXPECT_EQ(Delta([&] {
              EXPECT_FALSE(catalog_
                               ->Categorize("users", "no_such_column",
                                            DataCategory::kGeneric)
                               .ok());
            }),
            0u);
}

TEST_F(CatalogVersionTest, AuthorizationMutationsBumpOnce) {
  ASSERT_TRUE(catalog_->DefinePurpose("p1", "t").ok());
  EXPECT_EQ(Delta([&] { ASSERT_TRUE(catalog_->AuthorizeUser("u1", "p1").ok()); }),
            1u);
  EXPECT_EQ(Delta([&] { EXPECT_FALSE(catalog_->AuthorizeUser("u1", "p9").ok()); }),
            0u);
  EXPECT_EQ(Delta([&] { ASSERT_TRUE(catalog_->RevokeUser("u1", "p1").ok()); }),
            1u);
  EXPECT_EQ(Delta([&] { EXPECT_FALSE(catalog_->RevokeUser("u1", "p1").ok()); }),
            0u);
}

TEST_F(CatalogVersionTest, ProtectTableBumpsOnce) {
  EXPECT_EQ(Delta([&] { ASSERT_TRUE(catalog_->ProtectTable("users").ok()); }),
            1u);
  EXPECT_EQ(Delta([&] { EXPECT_FALSE(catalog_->ProtectTable("nope").ok()); }),
            0u);
}

TEST_F(CatalogVersionTest, PolicyAttachmentBumps) {
  ASSERT_TRUE(workload::ConfigurePatientsAccessControl(catalog_.get()).ok());
  PolicyManager manager(catalog_.get());

  Policy policy;
  policy.table = "users";
  PolicyRule rule;
  rule.columns = {"user_id"};
  rule.purposes = {"p1"};
  rule.action_type = ActionType::Direct(
      Multiplicity::kSingle, Aggregation::kNoAggregation, JointAccess::All());
  policy.rules = {rule};

  const uint64_t before = catalog_->version();
  ASSERT_TRUE(manager.AttachToTable(policy).ok());
  EXPECT_GT(catalog_->version(), before)
      << "attaching a policy must invalidate version-tagged rewrites";
}

TEST_F(CatalogVersionTest, ReloadBumps) {
  ASSERT_TRUE(catalog_->DefinePurpose("p1", "t").ok());
  const uint64_t before = catalog_->version();
  ASSERT_TRUE(catalog_->LoadFromMetadataTables().ok());
  EXPECT_EQ(catalog_->version(), before + 1);
}

}  // namespace
}  // namespace aapac::core
