// The enforcement monitor's audit trail: enabled on demand, records ok /
// denied / error outcomes with per-statement check counts, queryable as SQL.

#include <gtest/gtest.h>

#include <memory>

#include "core/monitor.h"
#include "workload/patients.h"
#include "workload/policies.h"

namespace aapac::core {
namespace {

class AuditTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<engine::Database>();
    workload::PatientsConfig config;
    config.num_patients = 5;
    config.samples_per_patient = 2;
    ASSERT_TRUE(workload::BuildPatientsDatabase(db_.get(), config).ok());
    catalog_ = std::make_unique<AccessControlCatalog>(db_.get());
    ASSERT_TRUE(catalog_->Initialize().ok());
    ASSERT_TRUE(workload::ConfigurePatientsAccessControl(catalog_.get()).ok());
    workload::ScatteredPolicyConfig sp;
    sp.selectivity = 0.0;
    ASSERT_TRUE(workload::ApplyScatteredPolicies(catalog_.get(), sp).ok());
    monitor_ = std::make_unique<EnforcementMonitor>(db_.get(), catalog_.get());
  }

  engine::ResultSet Audit(const std::string& where = "") {
    auto rs = monitor_->ExecuteUnrestricted(
        "select seq, ui, ap, outcome, checks, rows from audit_log" + where);
    EXPECT_TRUE(rs.ok()) << rs.status();
    return rs.ok() ? std::move(*rs) : engine::ResultSet{};
  }

  std::unique_ptr<engine::Database> db_;
  std::unique_ptr<AccessControlCatalog> catalog_;
  std::unique_ptr<EnforcementMonitor> monitor_;
};

TEST_F(AuditTest, DisabledByDefault) {
  EXPECT_FALSE(monitor_->audit_enabled());
  ASSERT_TRUE(monitor_->ExecuteQuery("select user_id from users", "p1").ok());
  EXPECT_EQ(db_->FindTable(EnforcementMonitor::kAuditTable), nullptr);
}

TEST_F(AuditTest, RecordsSuccessfulQueries) {
  ASSERT_TRUE(monitor_->EnableAuditLog().ok());
  ASSERT_TRUE(monitor_->EnableAuditLog().ok());  // Idempotent.
  ASSERT_TRUE(
      monitor_->ExecuteQuery("select user_id from users", "p1").ok());
  auto audit = Audit();
  ASSERT_EQ(audit.rows.size(), 1u);
  EXPECT_EQ(audit.rows[0][0].AsInt(), 1);            // seq.
  EXPECT_EQ(audit.rows[0][2].AsString(), "p1");      // ap.
  EXPECT_EQ(audit.rows[0][3].AsString(), "ok");      // outcome.
  EXPECT_EQ(audit.rows[0][4].AsInt(), 5);            // checks: 5 tuples.
  EXPECT_EQ(audit.rows[0][5].AsInt(), 5);            // rows.
}

TEST_F(AuditTest, RecordsDenialsAndErrors) {
  ASSERT_TRUE(monitor_->EnableAuditLog().ok());
  // Denied: unauthorized user.
  auto rs = monitor_->ExecuteQuery("select user_id from users", "p1", "eve");
  EXPECT_FALSE(rs.ok());
  // Error: bad SQL.
  rs = monitor_->ExecuteQuery("select nope from users", "p1", "");
  EXPECT_FALSE(rs.ok());
  auto audit = Audit();
  ASSERT_EQ(audit.rows.size(), 2u);
  EXPECT_EQ(audit.rows[0][3].AsString(), "denied");
  EXPECT_EQ(audit.rows[0][1].AsString(), "eve");
  EXPECT_EQ(audit.rows[1][3].AsString(), "error");
}

TEST_F(AuditTest, RecordsInserts) {
  ASSERT_TRUE(monitor_->EnableAuditLog().ok());
  auto n = monitor_->ExecuteInsert("insert into pr values ('p9', 'x')", "p1");
  ASSERT_TRUE(n.ok()) << n.status();
  auto audit = Audit();
  ASSERT_EQ(audit.rows.size(), 1u);
  EXPECT_EQ(audit.rows[0][3].AsString(), "ok");
  EXPECT_EQ(audit.rows[0][5].AsInt(), 1);
}

TEST_F(AuditTest, SequenceNumbersAreMonotonic) {
  ASSERT_TRUE(monitor_->EnableAuditLog().ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(monitor_->ExecuteQuery("select user_id from users", "p1").ok());
  }
  auto audit = Audit(" order by seq");
  ASSERT_EQ(audit.rows.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(audit.rows[static_cast<size_t>(i)][0].AsInt(), i + 1);
  }
}

TEST_F(AuditTest, AuditTableIsPlainSql) {
  ASSERT_TRUE(monitor_->EnableAuditLog().ok());
  ASSERT_TRUE(monitor_->ExecuteQuery("select user_id from users", "p1").ok());
  ASSERT_TRUE(monitor_->ExecuteQuery("select user_id from users", "p6").ok());
  auto rs = monitor_->ExecuteUnrestricted(
      "select ap, count(*) from audit_log group by ap order by ap");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->rows.size(), 2u);
  EXPECT_EQ(rs->rows[0][0].AsString(), "p1");
}

}  // namespace
}  // namespace aapac::core
