// Property tests for the bind-time StaticVerdict pass (core/static_verdict.h)
// and — above all — its decision-cache invalidation: a cached all-allow or
// all-deny decision must die on EVERY interning write path (Insert,
// InsertUnchecked, SetInternColumn, UpdateColumnWhere — including the
// zero-row update, EraseRows, mutable_row) and on catalog-version bumps.
// The oracle is a brute-force recompute over the live rows: the pass's
// class must equal the class the rows actually have, with any NULL or
// un-interned policy value forcing mixed (the dictionary no longer covers
// the table) and the empty table vacuously all-allow.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "core/catalog.h"
#include "core/compliance.h"
#include "core/masks.h"
#include "core/static_verdict.h"
#include "engine/database.h"
#include "engine/table.h"
#include "engine/value.h"
#include "util/bitstring.h"
#include "workload/patients.h"

namespace aapac::core {
namespace {

/// `rules` rule masks, all pass-none, with a pass-all rule at
/// `pass_all_position` when the policy should admit everything — the §6.1
/// scattered-policy construction.
std::string BuildPolicy(const MaskLayout& layout, int rules,
                        int pass_all_position) {
  BitString mask;
  for (int r = 0; r < rules; ++r) {
    mask.Append(r == pass_all_position ? layout.PassAllRuleMask()
                                       : layout.PassNoneRuleMask());
  }
  return mask.ToBytes();
}

struct Fixture {
  std::unique_ptr<engine::Database> db;
  std::unique_ptr<AccessControlCatalog> catalog;
  std::unique_ptr<StaticVerdictPass> pass;
  engine::Table* users = nullptr;
  size_t pcol = 0;
  MaskLayout layout{{}, {}};
  std::string probe;  // A query-side action-signature mask for `users`.
  // A small fixed palette (distinct dictionary ids) keeps every zone-map
  // block within its distinct-id capacity, so the pass never takes the
  // overflow fallback and its class must match the brute-force oracle
  // EXACTLY — not just soundly.
  std::vector<std::string> allow_palette;
  std::vector<std::string> deny_palette;

  Fixture() {
    db = std::make_unique<engine::Database>();
    workload::PatientsConfig config;
    config.num_patients = 60;
    config.samples_per_patient = 2;
    EXPECT_TRUE(workload::BuildPatientsDatabase(db.get(), config).ok());
    catalog = std::make_unique<AccessControlCatalog>(db.get());
    EXPECT_TRUE(catalog->Initialize().ok());
    EXPECT_TRUE(workload::ConfigurePatientsAccessControl(catalog.get()).ok());
    pass = std::make_unique<StaticVerdictPass>(catalog.get());

    auto users_or = db->GetTable("users");
    EXPECT_TRUE(users_or.ok());
    users = *users_or;
    auto layout_or = catalog->LayoutFor("users");
    EXPECT_TRUE(layout_or.ok());
    layout = *layout_or;
    auto pcol_or =
        users->schema().FindColumn(AccessControlCatalog::kPolicyColumn);
    EXPECT_TRUE(pcol_or.has_value());
    pcol = *pcol_or;

    ActionSignature sig;
    sig.columns = {layout.columns()[0]};
    sig.action_type = ActionType::Indirect(JointAccess::None());
    auto probe_or = layout.EncodeActionSignature(sig, layout.purposes()[0]);
    EXPECT_TRUE(probe_or.ok());
    probe = probe_or->ToBytes();

    for (int k = 0; k < 4; ++k) {
      const int rules = 1 + k % 3;
      allow_palette.push_back(BuildPolicy(layout, rules, k % rules));
    }
    for (int k = 0; k < 3; ++k) {
      deny_palette.push_back(BuildPolicy(layout, 1 + k, -1));
    }
    // Many small zone blocks: the live-id sweep unions several block
    // summaries and erasure compaction crosses block boundaries.
    users->ResetZoneMap(16);
  }

  /// Assigns `blob` (interned) to every row in `targets`.
  void Poke(const std::vector<size_t>& targets, const std::string& blob) {
    engine::Value v = engine::Value::Bytes(blob);
    users->InternColumnValue(pcol, &v);
    users->UpdateColumnWhere(pcol, v, targets);
  }

  /// Assigns round-robin from `blobs` to every row.
  void AssignAll(const std::vector<std::string>& blobs) {
    std::vector<engine::Value> values;
    for (const auto& blob : blobs) {
      engine::Value v = engine::Value::Bytes(blob);
      users->InternColumnValue(pcol, &v);
      values.push_back(std::move(v));
    }
    for (size_t i = 0; i < users->num_rows(); ++i) {
      users->mutable_row(i)[pcol] = values[i % values.size()];
    }
  }

  /// Brute-force oracle: the class the live rows actually have. NULL or
  /// un-interned policies force mixed; the empty table is vacuously
  /// all-allow.
  int ExpectedClass() const {
    if (users->num_rows() == 0) return 1;
    bool any_allow = false;
    bool any_deny = false;
    for (size_t i = 0; i < users->num_rows(); ++i) {
      const engine::Value& p = users->row(i)[pcol];
      if (p.is_null() || p.bytes_interned_id() == 0) return 0;
      if (CompliesWithPacked(probe, p.AsBytes())) {
        any_allow = true;
      } else {
        any_deny = true;
      }
    }
    if (!any_deny) return 1;
    if (!any_allow) return 2;
    return 0;
  }

  StaticVerdictPass::Decision Classify() {
    return pass->Classify("users", probe);
  }
};

TEST(StaticVerdictTest, ClassifiesUniformSingleAndMixedDictionaries) {
  Fixture f;
  ASSERT_FALSE(::testing::Test::HasFailure());

  f.AssignAll(f.allow_palette);  // Multi-id all-allow.
  StaticVerdictPass::Decision d = f.Classify();
  EXPECT_EQ(d.cls, 1);
  EXPECT_TRUE(d.has_dict);
  EXPECT_GT(d.allowed, 0u);
  EXPECT_EQ(d.denied, 0u);

  f.AssignAll(f.deny_palette);  // Multi-id all-deny.
  d = f.Classify();
  EXPECT_EQ(d.cls, 2);
  EXPECT_EQ(d.allowed, 0u);
  EXPECT_GT(d.denied, 0u);

  f.AssignAll({f.allow_palette[0]});  // Single-id all-allow.
  d = f.Classify();
  EXPECT_EQ(d.cls, 1);
  EXPECT_EQ(d.dict_size, 1u);

  std::vector<std::string> mixed = f.allow_palette;
  mixed.push_back(f.deny_palette[0]);
  f.AssignAll(mixed);
  d = f.Classify();
  EXPECT_EQ(d.cls, 0);
  EXPECT_GT(d.allowed, 0u);
  EXPECT_GT(d.denied, 0u);
}

TEST(StaticVerdictTest, StaleDictionaryEntriesDoNotDemote) {
  // The dictionary never shrinks: after a mixed population is wholly
  // re-policied to allowing masks, the denying blobs are still interned.
  // The live-id sweep must ignore them and still conclude all-allow.
  Fixture f;
  ASSERT_FALSE(::testing::Test::HasFailure());
  std::vector<std::string> mixed = f.allow_palette;
  mixed.push_back(f.deny_palette[0]);
  f.AssignAll(mixed);
  ASSERT_EQ(f.Classify().cls, 0);
  f.AssignAll(f.allow_palette);
  const StaticVerdictPass::Decision d = f.Classify();
  EXPECT_EQ(d.cls, 1) << "stale (dead) dictionary entries demoted a "
                         "uniformly allowing table to mixed";
  EXPECT_EQ(d.denied, 0u);
}

TEST(StaticVerdictTest, UntrackedPolicyValuesForceMixed) {
  Fixture f;
  ASSERT_FALSE(::testing::Test::HasFailure());
  f.AssignAll(f.allow_palette);
  ASSERT_EQ(f.Classify().cls, 1);

  // A raw, un-interned policy write (bypassing InternColumnValue) makes its
  // block untracked: the dictionary no longer covers the table and the pass
  // must refuse to conclude anything — even though the blob itself allows.
  f.users->mutable_row(7)[f.pcol] =
      engine::Value::Bytes(f.allow_palette[0]);
  StaticVerdictPass::Decision d = f.Classify();
  EXPECT_EQ(d.cls, 0);
  EXPECT_GT(d.untracked_blocks, 0u);

  // SetInternColumn re-interns the column wholesale: coverage is restored
  // and the cached mixed decision must not survive the re-interning.
  f.users->SetInternColumn(f.pcol);
  d = f.Classify();
  EXPECT_EQ(d.cls, 1);
  EXPECT_EQ(d.untracked_blocks, 0u);
}

TEST(StaticVerdictTest, EveryWritePathDemotesCachedDecisions) {
  Fixture f;
  ASSERT_FALSE(::testing::Test::HasFailure());
  f.AssignAll(f.allow_palette);

  // Prime the cache and prove it serves hits when nothing changed.
  ASSERT_EQ(f.Classify().cls, 1);
  StaticVerdictPass::CacheStats before = f.pass->cache_stats();
  ASSERT_EQ(f.Classify().cls, 1);
  StaticVerdictPass::CacheStats after = f.pass->cache_stats();
  ASSERT_EQ(after.hits, before.hits + 1);
  ASSERT_EQ(after.invalidations, before.invalidations);

  // Each mutation must turn the next Classify into an invalidation +
  // recompute whose class matches the brute-force oracle. Every op below
  // goes through a DIFFERENT write path.
  const auto mutate_and_check = [&](const char* what,
                                    const std::function<void()>& op) {
    ASSERT_EQ(f.Classify().cls, f.ExpectedClass()) << what << " (pre)";
    const StaticVerdictPass::CacheStats pre = f.pass->cache_stats();
    op();
    const StaticVerdictPass::Decision d = f.Classify();
    const StaticVerdictPass::CacheStats post = f.pass->cache_stats();
    EXPECT_EQ(post.invalidations, pre.invalidations + 1)
        << what << ": the cached decision survived the write";
    EXPECT_EQ(post.hits, pre.hits)
        << what << ": the stale decision was served as a hit";
    EXPECT_EQ(d.cls, f.ExpectedClass())
        << what << ": recomputed class disagrees with the brute force";
  };

  engine::Value deny = engine::Value::Bytes(f.deny_palette[0]);
  f.users->InternColumnValue(f.pcol, &deny);

  mutate_and_check("Insert (duplicate row)", [&] {
    engine::Row row = f.users->row(0);
    ASSERT_TRUE(f.users->Insert(std::move(row)).ok());
  });
  mutate_and_check("InsertUnchecked", [&] {
    f.users->InsertUnchecked(f.users->row(1));
  });
  mutate_and_check("UpdateColumnWhere (all-allow -> mixed)", [&] {
    f.users->UpdateColumnWhere(f.pcol, deny, {3, 5});
  });
  mutate_and_check("UpdateColumnWhere (zero rows)", [&] {
    f.users->UpdateColumnWhere(f.pcol, deny, {});
  });
  mutate_and_check("EraseRows", [&] { f.users->EraseRows({3, 5}); });
  mutate_and_check("mutable_row", [&] {
    engine::Value v = engine::Value::Bytes(f.allow_palette[1]);
    f.users->InternColumnValue(f.pcol, &v);
    f.users->mutable_row(2)[f.pcol] = v;
  });
  mutate_and_check("SetInternColumn (re-intern)", [&] {
    f.users->SetInternColumn(f.pcol);
  });
  mutate_and_check("catalog BumpVersion", [&] { f.catalog->BumpVersion(); });

  // Erase everything: the empty table is vacuously all-allow.
  std::vector<size_t> all;
  for (size_t i = 0; i < f.users->num_rows(); ++i) all.push_back(i);
  f.users->EraseRows(all);
  const StaticVerdictPass::Decision d = f.Classify();
  EXPECT_EQ(d.cls, 1);
  EXPECT_EQ(d.dict_size, 0u);
}

TEST(StaticVerdictTest, RandomizedWriteSequencesMatchBruteForce) {
  const uint64_t seed = 20260808;
  Fixture f;
  ASSERT_FALSE(::testing::Test::HasFailure());
  std::mt19937_64 rng(seed);
  f.AssignAll(f.allow_palette);

  for (int step = 0; step < 300; ++step) {
    SCOPED_TRACE("seed=" + std::to_string(seed) + " step=" +
                 std::to_string(step));
    const size_t n = f.users->num_rows();
    switch (rng() % 8) {
      case 0:
        f.AssignAll(f.allow_palette);
        break;
      case 1:
        f.AssignAll(f.deny_palette);
        break;
      case 2: {  // Poke a few rows with a random palette mask.
        if (n == 0) break;
        const bool deny = (rng() & 1) != 0;
        const std::string& blob =
            deny ? f.deny_palette[rng() % f.deny_palette.size()]
                 : f.allow_palette[rng() % f.allow_palette.size()];
        std::vector<size_t> targets;
        for (size_t k = 0, m = 1 + rng() % 6; k < m; ++k) {
          targets.push_back(rng() % n);
        }
        f.Poke(targets, blob);
        break;
      }
      case 3: {  // Erase a few rows.
        if (n < 8) break;
        std::set<size_t> unique;
        for (size_t k = 0, m = 1 + rng() % 4; k < m; ++k) {
          unique.insert(rng() % n);
        }
        f.users->EraseRows(
            std::vector<size_t>(unique.begin(), unique.end()));
        break;
      }
      case 4:  // Duplicate a row through the checked insert path.
        if (n == 0) break;
        ASSERT_TRUE(f.users->Insert(f.users->row(rng() % n)).ok());
        break;
      case 5: {  // Raw un-interned write: coverage lost, class must go 0.
        if (n == 0) break;
        f.users->mutable_row(rng() % n)[f.pcol] =
            engine::Value::Bytes(f.allow_palette[0]);
        break;
      }
      case 6:  // Re-intern the column: coverage restored.
        f.users->SetInternColumn(f.pcol);
        break;
      case 7:
        f.catalog->BumpVersion();
        break;
    }
    const int expected = f.ExpectedClass();
    const StaticVerdictPass::Decision d = f.Classify();
    ASSERT_EQ(d.cls, expected)
        << "pass class " << d.cls << " (allowed=" << d.allowed
        << " denied=" << d.denied << " untracked=" << d.untracked_blocks
        << ") vs brute force " << expected << " over "
        << f.users->num_rows() << " rows";
    // A second classification with no intervening write must be a cache
    // hit serving the same class.
    const StaticVerdictPass::CacheStats pre = f.pass->cache_stats();
    ASSERT_EQ(f.Classify().cls, expected);
    ASSERT_EQ(f.pass->cache_stats().hits, pre.hits + 1);
  }
}

}  // namespace
}  // namespace aapac::core
