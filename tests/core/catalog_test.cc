// Framework configuration (§5.1): Pr/Pm/Pa metadata tables, categorization,
// purpose authorizations, table protection and mask layouts.

#include "core/catalog.h"

#include <gtest/gtest.h>

#include "engine/exec.h"

namespace aapac::core {
namespace {

using engine::Column;
using engine::Database;
using engine::Schema;
using engine::Table;
using engine::Value;
using engine::ValueType;

class CatalogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema s;
    ASSERT_TRUE(s.AddColumn({"a", ValueType::kInt64}).ok());
    ASSERT_TRUE(s.AddColumn({"b", ValueType::kString}).ok());
    Table* t = *db_.CreateTable("t", s);
    ASSERT_TRUE(t->Insert({Value::Int(1), Value::String("x")}).ok());
    catalog_ = std::make_unique<AccessControlCatalog>(&db_);
    ASSERT_TRUE(catalog_->Initialize().ok());
  }

  size_t QueryCount(const std::string& sql) {
    engine::Executor exec(&db_);
    auto rs = exec.ExecuteSql(sql);
    EXPECT_TRUE(rs.ok()) << rs.status();
    return rs.ok() ? rs->rows.size() : 0;
  }

  Database db_;
  std::unique_ptr<AccessControlCatalog> catalog_;
};

TEST_F(CatalogTest, InitializeCreatesMetadataTables) {
  EXPECT_NE(db_.FindTable("pr"), nullptr);
  EXPECT_NE(db_.FindTable("pm"), nullptr);
  EXPECT_NE(db_.FindTable("pa"), nullptr);
  // Second initialize fails (tables exist).
  EXPECT_FALSE(catalog_->Initialize().ok());
}

TEST_F(CatalogTest, PurposesSyncToPrTable) {
  ASSERT_TRUE(catalog_->DefinePurpose("p2", "payment").ok());
  ASSERT_TRUE(catalog_->DefinePurpose("p1", "treatment").ok());
  EXPECT_EQ(QueryCount("select id from pr"), 2u);
  EXPECT_EQ(catalog_->purposes().ordered()[0].id, "p1");  // Oc order.
  EXPECT_FALSE(catalog_->DefinePurpose("p1", "dup").ok());
  ASSERT_TRUE(catalog_->RemovePurpose("p2").ok());
  EXPECT_EQ(QueryCount("select id from pr"), 1u);
  EXPECT_FALSE(catalog_->RemovePurpose("p2").ok());
}

TEST_F(CatalogTest, CategorizationSyncsToPmTable) {
  ASSERT_TRUE(catalog_->Categorize("t", "a", DataCategory::kIdentifier).ok());
  ASSERT_TRUE(catalog_->Categorize("T", "B", DataCategory::kSensitive).ok());
  EXPECT_EQ(QueryCount("select at from pm"), 2u);
  EXPECT_EQ(catalog_->CategoryOf("t", "a"), DataCategory::kIdentifier);
  EXPECT_EQ(catalog_->CategoryOf("t", "b"), DataCategory::kSensitive);
  // Re-categorizing overwrites.
  ASSERT_TRUE(catalog_->Categorize("t", "a", DataCategory::kGeneric).ok());
  EXPECT_EQ(catalog_->CategoryOf("t", "a"), DataCategory::kGeneric);
  EXPECT_EQ(QueryCount("select at from pm"), 2u);
}

TEST_F(CatalogTest, UncategorizedDefaultsToGeneric) {
  EXPECT_EQ(catalog_->CategoryOf("t", "a"), DataCategory::kGeneric);
  EXPECT_EQ(catalog_->CategoryOf("missing", "x"), DataCategory::kGeneric);
}

TEST_F(CatalogTest, CategorizeValidatesExistence) {
  EXPECT_EQ(catalog_->Categorize("zz", "a", DataCategory::kGeneric).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(catalog_->Categorize("t", "zz", DataCategory::kGeneric).code(),
            StatusCode::kNotFound);
}

TEST_F(CatalogTest, AuthorizationsSyncToPaTable) {
  ASSERT_TRUE(catalog_->DefinePurpose("p1", "x").ok());
  EXPECT_FALSE(catalog_->AuthorizeUser("u", "p9").ok());
  ASSERT_TRUE(catalog_->AuthorizeUser("u", "p1").ok());
  EXPECT_TRUE(catalog_->IsUserAuthorized("u", "p1"));
  EXPECT_FALSE(catalog_->IsUserAuthorized("v", "p1"));
  EXPECT_EQ(QueryCount("select ui from pa"), 1u);
  ASSERT_TRUE(catalog_->RevokeUser("u", "p1").ok());
  EXPECT_FALSE(catalog_->IsUserAuthorized("u", "p1"));
  EXPECT_EQ(QueryCount("select ui from pa"), 0u);
  EXPECT_FALSE(catalog_->RevokeUser("u", "p1").ok());
}

TEST_F(CatalogTest, ProtectTableAddsPolicyColumn) {
  ASSERT_TRUE(catalog_->ProtectTable("t").ok());
  EXPECT_TRUE(catalog_->IsProtected("t"));
  const Table* t = db_.FindTable("t");
  EXPECT_TRUE(t->schema().HasColumn("policy"));
  // Existing rows back-filled with NULL policies (deny-by-default).
  EXPECT_TRUE(t->row(0)[2].is_null());
  EXPECT_FALSE(catalog_->ProtectTable("t").ok());     // Already protected.
  EXPECT_FALSE(catalog_->ProtectTable("none").ok());  // Missing.
}

TEST_F(CatalogTest, LayoutExcludesPolicyColumn) {
  ASSERT_TRUE(catalog_->DefinePurpose("p1", "x").ok());
  ASSERT_TRUE(catalog_->DefinePurpose("p2", "y").ok());
  ASSERT_TRUE(catalog_->ProtectTable("t").ok());
  auto layout = catalog_->LayoutFor("t");
  ASSERT_TRUE(layout.ok());
  EXPECT_EQ(layout->columns(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(layout->purposes(), (std::vector<std::string>{"p1", "p2"}));
  EXPECT_EQ(layout->unpadded_bits(), 2u + 2u + 10u);
  EXPECT_FALSE(catalog_->LayoutFor("none").ok());
}

}  // namespace
}  // namespace aapac::core
