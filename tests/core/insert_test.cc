// Policy-carrying inserts (§5.3) and the engine's INSERT execution:
// VALUES / SELECT sources, column lists, defaults, atomicity, and the
// monitor's policy stamping + read enforcement of INSERT ... SELECT.

#include <gtest/gtest.h>

#include <memory>

#include "core/compliance.h"
#include "core/monitor.h"
#include "core/policy_manager.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "workload/patients.h"
#include "workload/policies.h"

namespace aapac::core {
namespace {

using engine::Value;

TEST(InsertParseTest, ValuesForm) {
  auto stmt = sql::ParseInsert(
      "insert into t (a, b) values (1, 'x'), (2, null)");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ((*stmt)->table, "t");
  EXPECT_EQ((*stmt)->columns, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ((*stmt)->rows.size(), 2u);
  EXPECT_EQ((*stmt)->select, nullptr);
}

TEST(InsertParseTest, SelectForm) {
  auto stmt = sql::ParseInsert("insert into t select a, b from u where a > 1");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_TRUE((*stmt)->columns.empty());
  EXPECT_NE((*stmt)->select, nullptr);
}

TEST(InsertParseTest, PrintRoundTrip) {
  for (const char* sql :
       {"insert into t (a, b) values (1, 'x''y'), (2.5, b'01')",
        "insert into t select a from u"}) {
    auto stmt = sql::ParseInsert(sql);
    ASSERT_TRUE(stmt.ok()) << sql;
    auto reparsed = sql::ParseInsert(sql::ToSql(**stmt));
    ASSERT_TRUE(reparsed.ok()) << sql::ToSql(**stmt);
    EXPECT_EQ(sql::ToSql(**reparsed), sql::ToSql(**stmt));
  }
}

TEST(InsertParseTest, Malformed) {
  EXPECT_FALSE(sql::ParseInsert("insert t values (1)").ok());
  EXPECT_FALSE(sql::ParseInsert("insert into t").ok());
  EXPECT_FALSE(sql::ParseInsert("insert into t values 1").ok());
  EXPECT_FALSE(sql::ParseInsert("insert into t values (1) extra").ok());
}

TEST(InsertParseTest, ParseStatementDispatches) {
  auto stmt = sql::ParseStatement("insert into t values (1)");
  ASSERT_TRUE(stmt.ok());
  EXPECT_NE(stmt->insert, nullptr);
  EXPECT_EQ(stmt->select, nullptr);
  stmt = sql::ParseStatement("select 1 from t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_NE(stmt->select, nullptr);
  EXPECT_EQ(stmt->insert, nullptr);
}

class InsertExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<engine::Database>();
    engine::Schema schema;
    ASSERT_TRUE(schema.AddColumn({"id", engine::ValueType::kInt64}).ok());
    ASSERT_TRUE(schema.AddColumn({"name", engine::ValueType::kString}).ok());
    ASSERT_TRUE(schema.AddColumn({"score", engine::ValueType::kDouble}).ok());
    table_ = *db_->CreateTable("t", schema);
    exec_ = std::make_unique<engine::Executor>(db_.get());
  }

  Result<size_t> Insert(const std::string& sql) {
    auto stmt = sql::ParseInsert(sql);
    if (!stmt.ok()) return stmt.status();
    return exec_->ExecuteInsert(**stmt);
  }

  std::unique_ptr<engine::Database> db_;
  engine::Table* table_ = nullptr;
  std::unique_ptr<engine::Executor> exec_;
};

TEST_F(InsertExecTest, ValuesAllColumns) {
  auto n = Insert("insert into t values (1, 'a', 0.5), (2, 'b', 1.5)");
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(*n, 2u);
  EXPECT_EQ(table_->num_rows(), 2u);
  EXPECT_EQ(table_->row(1)[1].AsString(), "b");
}

TEST_F(InsertExecTest, ColumnListWithDefaults) {
  ASSERT_TRUE(Insert("insert into t (name, id) values ('x', 7)").ok());
  EXPECT_EQ(table_->row(0)[0].AsInt(), 7);
  EXPECT_EQ(table_->row(0)[1].AsString(), "x");
  EXPECT_TRUE(table_->row(0)[2].is_null());  // Unlisted -> NULL.
}

TEST_F(InsertExecTest, ExpressionsAndFunctionsInValues) {
  ASSERT_TRUE(Insert("insert into t values (1 + 2, lower('ABC'), abs(-1))")
                  .ok());
  EXPECT_EQ(table_->row(0)[0].AsInt(), 3);
  EXPECT_EQ(table_->row(0)[1].AsString(), "abc");
  EXPECT_EQ(table_->row(0)[2].AsDouble(), 1.0);
}

TEST_F(InsertExecTest, InsertFromSelect) {
  ASSERT_TRUE(Insert("insert into t values (1, 'a', 1.0), (2, 'b', 2.0)").ok());
  auto n = Insert(
      "insert into t (id, name, score) select id + 10, name, score * 2 "
      "from t where id = 1");
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(*n, 1u);
  EXPECT_EQ(table_->num_rows(), 3u);
  EXPECT_EQ(table_->row(2)[0].AsInt(), 11);
  EXPECT_EQ(table_->row(2)[2].AsDouble(), 2.0);
}

TEST_F(InsertExecTest, ErrorsAndAtomicity) {
  // Arity mismatch.
  EXPECT_FALSE(Insert("insert into t values (1, 'a')").ok());
  // Unknown table / column.
  EXPECT_FALSE(Insert("insert into zz values (1)").ok());
  EXPECT_FALSE(Insert("insert into t (nope) values (1)").ok());
  // Duplicate column.
  EXPECT_FALSE(Insert("insert into t (id, id) values (1, 2)").ok());
  // Column references make no sense in VALUES.
  EXPECT_FALSE(Insert("insert into t (id) values (other_col)").ok());
  // Type error on the second row must leave nothing behind.
  auto n = Insert("insert into t values (1, 'ok', 1.0), ('bad', 'x', 2.0)");
  EXPECT_FALSE(n.ok());
  EXPECT_EQ(table_->num_rows(), 0u);
}

class MonitorInsertTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<engine::Database>();
    workload::PatientsConfig config;
    config.num_patients = 5;
    config.samples_per_patient = 2;
    ASSERT_TRUE(workload::BuildPatientsDatabase(db_.get(), config).ok());
    catalog_ = std::make_unique<AccessControlCatalog>(db_.get());
    ASSERT_TRUE(catalog_->Initialize().ok());
    ASSERT_TRUE(workload::ConfigurePatientsAccessControl(catalog_.get()).ok());
    monitor_ = std::make_unique<EnforcementMonitor>(db_.get(), catalog_.get());
    workload::ScatteredPolicyConfig sp;
    sp.selectivity = 0.0;
    ASSERT_TRUE(workload::ApplyScatteredPolicies(catalog_.get(), sp).ok());
  }

  Policy UsersPolicy() {
    Policy policy;
    policy.table = "users";
    PolicyRule rule;
    rule.columns = {"user_id", "watch_id", "nutritional_profile_id"};
    rule.purposes = {"p1"};
    rule.action_type = ActionType::Direct(Multiplicity::kSingle,
                                          Aggregation::kNoAggregation,
                                          JointAccess::All());
    PolicyRule indirect = rule;
    indirect.action_type = ActionType::Indirect(JointAccess::All());
    policy.rules = {rule, indirect};
    return policy;
  }

  std::unique_ptr<engine::Database> db_;
  std::unique_ptr<AccessControlCatalog> catalog_;
  std::unique_ptr<EnforcementMonitor> monitor_;
};

TEST_F(MonitorInsertTest, ProtectedTableRequiresPolicy) {
  auto n = monitor_->ExecuteInsert(
      "insert into users values ('user9', 'watch9', 'profile9')", "p1");
  EXPECT_EQ(n.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(MonitorInsertTest, PolicyStampedOntoNewTuples) {
  Policy policy = UsersPolicy();
  auto n = monitor_->ExecuteInsert(
      "insert into users (user_id, watch_id, nutritional_profile_id) "
      "values ('user9', 'watch9', 'profile9')",
      "p1", &policy);
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(*n, 1u);

  // The new tuple is visible under p1 and invisible under p6.
  auto rs = monitor_->ExecuteQuery(
      "select user_id from users where user_id like 'user9'", "p1");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 1u);
  rs = monitor_->ExecuteQuery(
      "select user_id from users where user_id like 'user9'", "p6");
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(rs->rows.empty());
}

TEST_F(MonitorInsertTest, PolicyColumnCannotBeListed) {
  Policy policy = UsersPolicy();
  auto n = monitor_->ExecuteInsert(
      "insert into users (user_id, watch_id, nutritional_profile_id, policy) "
      "values ('u', 'w', 'p', b'1')",
      "p1", &policy);
  EXPECT_FALSE(n.ok());
  EXPECT_EQ(n.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(MonitorInsertTest, PolicyValidated) {
  Policy policy = UsersPolicy();
  policy.rules[0].purposes = {"p99"};
  auto n = monitor_->ExecuteInsert(
      "insert into users (user_id, watch_id, nutritional_profile_id) "
      "values ('u', 'w', 'p')",
      "p1", &policy);
  EXPECT_FALSE(n.ok());

  policy = UsersPolicy();
  policy.table = "sensed_data";  // Mismatch with INSERT target.
  n = monitor_->ExecuteInsert(
      "insert into users (user_id, watch_id, nutritional_profile_id) "
      "values ('u', 'w', 'p')",
      "p1", &policy);
  EXPECT_EQ(n.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(MonitorInsertTest, InsertSelectSourceIsEnforced) {
  // Replace all users policies with non-compliant ones; an INSERT ... SELECT
  // from users then copies nothing, because the rewritten source returns
  // nothing.
  workload::ScatteredPolicyConfig sp;
  sp.selectivity = 1.0;
  ASSERT_TRUE(workload::ApplyScatteredPolicies(catalog_.get(), sp).ok());
  Policy policy = UsersPolicy();
  auto n = monitor_->ExecuteInsert(
      "insert into users (user_id, watch_id, nutritional_profile_id) "
      "select user_id, watch_id, nutritional_profile_id from users",
      "p1", &policy);
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(*n, 0u);

  sp.selectivity = 0.0;
  ASSERT_TRUE(workload::ApplyScatteredPolicies(catalog_.get(), sp).ok());
  n = monitor_->ExecuteInsert(
      "insert into users (user_id, watch_id, nutritional_profile_id) "
      "select user_id, watch_id, nutritional_profile_id from users",
      "p1", &policy);
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(*n, 5u);
  EXPECT_EQ(db_->FindTable("users")->num_rows(), 10u);
}

TEST_F(MonitorInsertTest, UnprotectedTableNeedsNoPolicy) {
  auto n = monitor_->ExecuteInsert("insert into pr values ('p9', 'extra')",
                                   "p1");
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(*n, 1u);
}

TEST_F(MonitorInsertTest, UserAuthorizationApplies) {
  Policy policy = UsersPolicy();
  auto n = monitor_->ExecuteInsert(
      "insert into users (user_id, watch_id, nutritional_profile_id) "
      "values ('u', 'w', 'p')",
      "p1", &policy, "mallory");
  EXPECT_EQ(n.status().code(), StatusCode::kPermissionDenied);
}

}  // namespace
}  // namespace aapac::core
