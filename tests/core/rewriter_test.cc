// Query rewriting (§5.5, Listing 2): conjunct placement and ordering,
// sub-query recursion, star expansion, protected-table scoping.

#include "core/rewriter.h"

#include <gtest/gtest.h>

#include <memory>

#include "sql/parser.h"
#include "workload/patients.h"
#include "workload/queries.h"

namespace aapac::core {
namespace {

size_t CountOccurrences(const std::string& haystack,
                        const std::string& needle) {
  size_t count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + 1)) {
    ++count;
  }
  return count;
}

class RewriterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<engine::Database>();
    workload::PatientsConfig config;
    config.num_patients = 2;
    config.samples_per_patient = 2;
    ASSERT_TRUE(workload::BuildPatientsDatabase(db_.get(), config).ok());
    catalog_ = std::make_unique<AccessControlCatalog>(db_.get());
    ASSERT_TRUE(catalog_->Initialize().ok());
    ASSERT_TRUE(workload::ConfigurePatientsAccessControl(catalog_.get()).ok());
    rewriter_ = std::make_unique<QueryRewriter>(catalog_.get());
  }

  std::string Rewrite(const std::string& sql, const std::string& purpose = "p1") {
    auto out = rewriter_->RewriteSql(sql, purpose);
    EXPECT_TRUE(out.ok()) << sql << " -> " << out.status();
    return std::move(out).ValueOr("");
  }

  std::unique_ptr<engine::Database> db_;
  std::unique_ptr<AccessControlCatalog> catalog_;
  std::unique_ptr<QueryRewriter> rewriter_;
};

TEST_F(RewriterTest, AddsOneCheckPerActionSignature) {
  const std::string sql = Rewrite("select temperature from sensed_data");
  EXPECT_EQ(CountOccurrences(sql, "complies_with"), 1u);
  EXPECT_NE(sql.find("sensed_data.policy"), std::string::npos);
}

TEST_F(RewriterTest, OriginalWhereComesFirst) {
  const std::string sql =
      Rewrite("select temperature from sensed_data where beats > 100");
  const size_t original = sql.find("beats > 100");
  const size_t check = sql.find("complies_with");
  ASSERT_NE(original, std::string::npos);
  ASSERT_NE(check, std::string::npos);
  EXPECT_LT(original, check);
}

TEST_F(RewriterTest, NoWhereStartsWithChecks) {
  const std::string sql = Rewrite("select temperature from sensed_data");
  EXPECT_NE(sql.find("where complies_with"), std::string::npos);
}

TEST_F(RewriterTest, ChecksUseBindingAliases) {
  const std::string sql =
      Rewrite("select s.temperature from sensed_data s");
  EXPECT_NE(sql.find("s.policy"), std::string::npos);
  EXPECT_EQ(sql.find("sensed_data.policy"), std::string::npos);
}

TEST_F(RewriterTest, MasksEmbedAsBitLiterals) {
  const std::string sql = Rewrite("select temperature from sensed_data");
  EXPECT_NE(sql.find("b'"), std::string::npos);
  // The mask is 24 bits for sensed_data (5 cols + 8 purposes + 10 + pad).
  const size_t start = sql.find("b'") + 2;
  const size_t end = sql.find('\'', start);
  EXPECT_EQ(end - start, 24u);
}

TEST_F(RewriterTest, UnprotectedTablesUntouched) {
  const std::string sql = Rewrite("select id, ds from pr");
  EXPECT_EQ(CountOccurrences(sql, "complies_with"), 0u);
}

TEST_F(RewriterTest, MixedProtectionOnlyChecksProtected) {
  const std::string sql = Rewrite(
      "select user_id from users join pr on users.user_id = pr.id");
  // users contributes signatures; pr none.
  EXPECT_GT(CountOccurrences(sql, "users.policy"), 0u);
  EXPECT_EQ(CountOccurrences(sql, "pr.policy"), 0u);
}

TEST_F(RewriterTest, SubqueriesRewrittenAtTheirLevel) {
  const std::string sql = Rewrite(
      "select user_id from users where nutritional_profile_id in "
      "(select profile_id from nutritional_profiles where diet_type like "
      "'vegan')");
  // Checks on nutritional_profiles must appear inside the IN sub-query.
  const size_t in_open = sql.find(" in (");
  ASSERT_NE(in_open, std::string::npos);
  const size_t inner_check = sql.find("nutritional_profiles.policy");
  ASSERT_NE(inner_check, std::string::npos);
  EXPECT_GT(inner_check, in_open);
}

TEST_F(RewriterTest, DerivedTablesRewrittenInside) {
  const std::string sql = Rewrite(
      "select user_id, avg(s1.b) from users join (select watch_id as w, "
      "beats as b from sensed_data where beats > 100) s1 on "
      "users.watch_id = s1.w group by user_id");
  const size_t derived_open = sql.find("(select");
  const size_t sensed_check = sql.find("sensed_data.policy");
  ASSERT_NE(derived_open, std::string::npos);
  ASSERT_NE(sensed_check, std::string::npos);
  EXPECT_GT(sensed_check, derived_open);
  // Outer checks only on users, never on the derived alias.
  EXPECT_EQ(CountOccurrences(sql, "s1.policy"), 0u);
  EXPECT_GT(CountOccurrences(sql, "users.policy"), 0u);
}

TEST_F(RewriterTest, ScalarSubqueryInSelectListRewritten) {
  const std::string sql = Rewrite(
      "select user_id, (select avg(beats) from sensed_data) from users");
  EXPECT_GT(CountOccurrences(sql, "sensed_data.policy"), 0u);
  EXPECT_GT(CountOccurrences(sql, "users.policy"), 0u);
}

TEST_F(RewriterTest, QueryTouchingNoColumnsGetsNoChecks) {
  // A select list made of one uncorrelated scalar sub-query reads nothing
  // from the outer table, so the outer level needs no policy conjunct.
  const std::string sql = Rewrite(
      "select (select avg(beats) from sensed_data) from users");
  EXPECT_EQ(CountOccurrences(sql, "users.policy"), 0u);
  EXPECT_GT(CountOccurrences(sql, "sensed_data.policy"), 0u);
}

TEST_F(RewriterTest, StarExpandedWithoutPolicyColumn) {
  const std::string sql = Rewrite("select * from users");
  EXPECT_NE(sql.find("users.user_id"), std::string::npos);
  EXPECT_NE(sql.find("users.watch_id"), std::string::npos);
  EXPECT_NE(sql.find("users.nutritional_profile_id"), std::string::npos);
  // The policy column appears only inside the checks, never projected.
  const size_t select_end = sql.find(" from ");
  EXPECT_EQ(sql.substr(0, select_end).find("policy"), std::string::npos);
}

TEST_F(RewriterTest, QualifiedStarExpansion) {
  const std::string sql = Rewrite(
      "select u.* from users u join sensed_data s on u.watch_id = s.watch_id");
  const size_t select_end = sql.find(" from ");
  const std::string head = sql.substr(0, select_end);
  EXPECT_NE(head.find("u.user_id"), std::string::npos);
  EXPECT_EQ(head.find("s.temperature"), std::string::npos);
  EXPECT_EQ(head.find("policy"), std::string::npos);
}

TEST_F(RewriterTest, RewrittenSqlAlwaysReparses) {
  for (const auto& q : workload::PaperQueries()) {
    const std::string sql = Rewrite(q.sql, "p3");
    auto reparsed = sql::ParseSelect(sql);
    EXPECT_TRUE(reparsed.ok()) << q.name << ": " << sql;
  }
  for (const auto& q : workload::RandomQueries(7)) {
    const std::string sql = Rewrite(q.sql, "p3");
    auto reparsed = sql::ParseSelect(sql);
    EXPECT_TRUE(reparsed.ok()) << q.name << ": " << sql;
  }
}

TEST_F(RewriterTest, UnknownPurposeRejected) {
  auto out = rewriter_->RewriteSql("select user_id from users", "p99");
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kNotFound);
}

TEST_F(RewriterTest, ParseErrorsPropagate) {
  EXPECT_FALSE(rewriter_->RewriteSql("not sql", "p1").ok());
}

TEST_F(RewriterTest, UserQueriesCannotTouchEnforcementInternals) {
  // Direct policy-column reads would leak masks.
  for (const char* sql : {
           "select policy from users",
           "select users.policy from users",
           "select user_id from users where policy is not null",
           "select user_id from users order by policy",
           "select user_id from users where nutritional_profile_id in "
           "(select profile_id from nutritional_profiles where policy is "
           "null)",
           "select u.user_id from users u join sensed_data s on "
           "u.policy = s.policy",
       }) {
    auto out = rewriter_->RewriteSql(sql, "p1");
    EXPECT_FALSE(out.ok()) << sql;
    EXPECT_EQ(out.status().code(), StatusCode::kPermissionDenied) << sql;
  }
  // Calling the enforcement UDFs directly could forge always-true checks.
  for (const char* sql : {
           "select complies_with(b'1', b'1') from users",
           "select user_id from users where complies_with(b'1', b'1')",
           "select user_id from users where purpose_allows(b'1', b'1')",
       }) {
    auto out = rewriter_->RewriteSql(sql, "p1");
    EXPECT_FALSE(out.ok()) << sql;
    EXPECT_EQ(out.status().code(), StatusCode::kPermissionDenied) << sql;
  }
  // The rewriter's own output is of course allowed to contain them: the
  // check runs before this level's conjuncts are added.
  EXPECT_TRUE(rewriter_->RewriteSql("select user_id from users", "p1").ok());
}

TEST_F(RewriterTest, RewrittenOutputCannotBeResubmitted) {
  // A rewritten query contains complies_with conjuncts; feeding it back to
  // the monitor (e.g. a user replaying captured SQL to forge a weaker
  // check) must be rejected by the reserved-name guard.
  for (const auto& q : workload::PaperQueries()) {
    const std::string once = Rewrite(q.sql, "p3");
    if (once.find("complies_with") == std::string::npos) continue;
    auto twice = rewriter_->RewriteSql(once, "p3");
    EXPECT_FALSE(twice.ok()) << q.name;
    EXPECT_EQ(twice.status().code(), StatusCode::kPermissionDenied) << q.name;
  }
}

TEST_F(RewriterTest, GroupByHavingPreserved) {
  const std::string sql = Rewrite(
      "select user_id, avg(beats) from users join sensed_data on "
      "users.watch_id = sensed_data.watch_id group by user_id having "
      "avg(beats)>90",
      "p3");
  EXPECT_NE(sql.find("group by user_id"), std::string::npos);
  EXPECT_NE(sql.find("having"), std::string::npos);
  // Checks precede GROUP BY (they live in WHERE).
  EXPECT_LT(sql.find("complies_with"), sql.find("group by"));
}

}  // namespace
}  // namespace aapac::core
