// Trace/audit integration: every audited statement's row carries the id of
// its pipeline trace, so `select ... from audit_log` joins back to the
// timing breakdown in the monitor's trace ring, and the monitor's stage
// histograms fill as statements execute.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/monitor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "workload/patients.h"
#include "workload/policies.h"

namespace aapac::core {
namespace {

class TraceAuditTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<engine::Database>();
    workload::PatientsConfig config;
    config.num_patients = 5;
    config.samples_per_patient = 2;
    ASSERT_TRUE(workload::BuildPatientsDatabase(db_.get(), config).ok());
    catalog_ = std::make_unique<AccessControlCatalog>(db_.get());
    ASSERT_TRUE(catalog_->Initialize().ok());
    ASSERT_TRUE(workload::ConfigurePatientsAccessControl(catalog_.get()).ok());
    workload::ScatteredPolicyConfig sp;
    sp.selectivity = 0.0;
    ASSERT_TRUE(workload::ApplyScatteredPolicies(catalog_.get(), sp).ok());
    monitor_ = std::make_unique<EnforcementMonitor>(db_.get(), catalog_.get());
  }

  /// The `trace` column of the only audit row.
  int64_t SoleAuditTraceId() {
    auto rs = monitor_->ExecuteUnrestricted("select trace from audit_log");
    EXPECT_TRUE(rs.ok()) << rs.status();
    EXPECT_EQ(rs->rows.size(), 1u);
    return rs->rows.empty() ? 0 : rs->rows[0][0].AsInt();
  }

  std::unique_ptr<engine::Database> db_;
  std::unique_ptr<AccessControlCatalog> catalog_;
  std::unique_ptr<EnforcementMonitor> monitor_;
};

TEST_F(TraceAuditTest, AuditRowJoinsBackToItsTrace) {
  if (!obs::kObsCompiledIn) GTEST_SKIP() << "built with AAPAC_OBS_OFF";
  ASSERT_TRUE(monitor_->EnableAuditLog().ok());
  const std::string sql = "select user_id from users";
  ASSERT_TRUE(monitor_->ExecuteQuery(sql, "p1").ok());

  const int64_t trace_id = SoleAuditTraceId();
  ASSERT_GT(trace_id, 0);
  auto rec = monitor_->traces()->Find(static_cast<uint64_t>(trace_id));
  ASSERT_TRUE(rec.ok()) << rec.status();
  EXPECT_EQ(rec->sql, sql);
  EXPECT_EQ(rec->purpose, "p1");
  EXPECT_EQ(rec->outcome, "ok");
  EXPECT_EQ(rec->checks, 5u);  // One complies_with per users tuple.

  // The monitor-side stages appear as spans of the joined trace.
  bool saw_parse = false, saw_rewrite = false, saw_execute = false;
  for (const auto& span : rec->spans) {
    const std::string stage = span.stage;
    saw_parse |= stage == obs::kStageParse;
    saw_rewrite |= stage == obs::kStageRewrite;
    saw_execute |= stage == obs::kStageExecute;
  }
  EXPECT_TRUE(saw_parse);
  EXPECT_TRUE(saw_rewrite);
  EXPECT_TRUE(saw_execute);
}

TEST_F(TraceAuditTest, DeniedStatementTraceCarriesTheReason) {
  if (!obs::kObsCompiledIn) GTEST_SKIP() << "built with AAPAC_OBS_OFF";
  ASSERT_TRUE(monitor_->EnableAuditLog().ok());
  EXPECT_FALSE(
      monitor_->ExecuteQuery("select user_id from users", "p1", "eve").ok());

  const int64_t trace_id = SoleAuditTraceId();
  ASSERT_GT(trace_id, 0);
  auto rec = monitor_->traces()->Find(static_cast<uint64_t>(trace_id));
  ASSERT_TRUE(rec.ok()) << rec.status();
  EXPECT_EQ(rec->outcome, "denied");
  EXPECT_EQ(rec->user, "eve");
  EXPECT_FALSE(rec->deny_reason.empty());
}

TEST_F(TraceAuditTest, DistinctStatementsGetDistinctTraceIds) {
  if (!obs::kObsCompiledIn) GTEST_SKIP() << "built with AAPAC_OBS_OFF";
  ASSERT_TRUE(monitor_->EnableAuditLog().ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(monitor_->ExecuteQuery("select user_id from users", "p1").ok());
  }
  auto rs = monitor_->ExecuteUnrestricted(
      "select trace from audit_log order by 1");
  ASSERT_TRUE(rs.ok()) << rs.status();
  ASSERT_EQ(rs->rows.size(), 3u);
  EXPECT_GT(rs->rows[0][0].AsInt(), 0);
  EXPECT_LT(rs->rows[0][0].AsInt(), rs->rows[1][0].AsInt());
  EXPECT_LT(rs->rows[1][0].AsInt(), rs->rows[2][0].AsInt());
}

TEST_F(TraceAuditTest, MonitorStageHistogramsFillAndCountersCount) {
  if (!obs::kObsCompiledIn) GTEST_SKIP() << "built with AAPAC_OBS_OFF";
  ASSERT_TRUE(monitor_->ExecuteQuery("select user_id from users", "p1").ok());
  EXPECT_FALSE(
      monitor_->ExecuteQuery("select nope from users", "p1").ok());

  obs::MetricsRegistry* reg = monitor_->metrics().get();
  EXPECT_GT(reg->histogram(obs::kStageParse)->count(), 0u);
  EXPECT_GT(reg->histogram(obs::kStageDerive)->count(), 0u);
  EXPECT_GT(reg->histogram(obs::kStageRewrite)->count(), 0u);
  EXPECT_GT(reg->histogram(obs::kStageExecute)->count(), 0u);
  EXPECT_EQ(reg->counter("enforce.ok")->value(), 1u);
  EXPECT_EQ(reg->counter("enforce.error")->value(), 1u);
  EXPECT_EQ(reg->counter("enforce.denied")->value(), 0u);
  // The legacy accessor and the registry counter are the same storage.
  EXPECT_NE(
      reg->RenderJson().find("\"enforce.compliance_checks\":" +
                             std::to_string(monitor_->compliance_checks())),
      std::string::npos);
}

}  // namespace
}  // namespace aapac::core
