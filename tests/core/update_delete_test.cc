// UPDATE/DELETE: parsing, engine execution (snapshot semantics, atomicity)
// and the monitor's select-equivalent write enforcement.

#include <gtest/gtest.h>

#include <memory>

#include "core/monitor.h"
#include "core/policy_manager.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "tests/engine/test_db.h"
#include "workload/patients.h"
#include "workload/policies.h"

namespace aapac::core {
namespace {

using engine::Value;

TEST(UpdateDeleteParseTest, UpdateForm) {
  auto stmt = sql::ParseUpdate("update t set a = 1, b = a + 1 where c > 2");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ((*stmt)->table, "t");
  ASSERT_EQ((*stmt)->assignments.size(), 2u);
  EXPECT_EQ((*stmt)->assignments[0].column, "a");
  EXPECT_NE((*stmt)->where, nullptr);
}

TEST(UpdateDeleteParseTest, DeleteForm) {
  auto stmt = sql::ParseDelete("delete from t where a in (1, 2)");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ((*stmt)->table, "t");
  EXPECT_NE((*stmt)->where, nullptr);
  auto no_where = sql::ParseDelete("delete from t");
  ASSERT_TRUE(no_where.ok());
  EXPECT_EQ((*no_where)->where, nullptr);
}

TEST(UpdateDeleteParseTest, PrintRoundTrip) {
  for (const char* text :
       {"update t set a = 1 where (b like 'x%')",
        "update t set a = (a + 1), b = null",
        "delete from t where (a between 1 and 2)", "delete from t"}) {
    if (std::string(text).rfind("update", 0) == 0) {
      auto stmt = sql::ParseUpdate(text);
      ASSERT_TRUE(stmt.ok()) << text;
      EXPECT_EQ(sql::ToSql(**sql::ParseUpdate(sql::ToSql(**stmt))),
                sql::ToSql(**stmt));
    } else {
      auto stmt = sql::ParseDelete(text);
      ASSERT_TRUE(stmt.ok()) << text;
      EXPECT_EQ(sql::ToSql(**sql::ParseDelete(sql::ToSql(**stmt))),
                sql::ToSql(**stmt));
    }
  }
}

TEST(UpdateDeleteParseTest, Malformed) {
  EXPECT_FALSE(sql::ParseUpdate("update t a = 1").ok());
  EXPECT_FALSE(sql::ParseUpdate("update t set").ok());
  EXPECT_FALSE(sql::ParseUpdate("update t set a 1").ok());
  EXPECT_FALSE(sql::ParseDelete("delete t").ok());
  EXPECT_FALSE(sql::ParseDelete("delete from t where").ok());
}

TEST(UpdateDeleteParseTest, StatementDispatch) {
  auto s = sql::ParseStatement("update t set a = 1");
  ASSERT_TRUE(s.ok());
  EXPECT_NE(s->update, nullptr);
  s = sql::ParseStatement("delete from t");
  ASSERT_TRUE(s.ok());
  EXPECT_NE(s->del, nullptr);
}

class UpdateDeleteExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = engine::MakeTestDb();
    exec_ = std::make_unique<engine::Executor>(db_.get());
  }

  Result<size_t> Update(const std::string& sql) {
    auto stmt = sql::ParseUpdate(sql);
    if (!stmt.ok()) return stmt.status();
    return exec_->ExecuteUpdate(**stmt);
  }

  Result<size_t> Delete(const std::string& sql) {
    auto stmt = sql::ParseDelete(sql);
    if (!stmt.ok()) return stmt.status();
    return exec_->ExecuteDelete(**stmt);
  }

  std::unique_ptr<engine::Database> db_;
  std::unique_ptr<engine::Executor> exec_;
};

TEST_F(UpdateDeleteExecTest, UpdateMatchingRows) {
  auto n = Update("update items set qty = qty + 1 where active");
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(*n, 3u);
  auto rows = engine::ExecSorted(db_.get(),
                                 "select id, qty from items where active");
  EXPECT_EQ(rows, (std::vector<std::string>{"1|11", "2|21", "5|11"}));
}

TEST_F(UpdateDeleteExecTest, UpdateAllWithoutWhere) {
  auto n = Update("update items set price = 0");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 5u);
}

TEST_F(UpdateDeleteExecTest, UpdateSeesOldValuesSnapshot) {
  // Swap-like update: new name references old price and vice versa.
  ASSERT_TRUE(Update("update items set price = qty, qty = 0 where id = 1")
                  .ok());
  auto rows = engine::ExecSorted(db_.get(),
                                 "select price, qty from items where id = 1");
  EXPECT_EQ(rows, (std::vector<std::string>{"10|0"}));
}

TEST_F(UpdateDeleteExecTest, UpdateTypeChecked) {
  EXPECT_FALSE(Update("update items set qty = 'not a number'").ok());
  // Atomic: nothing changed.
  auto rows = engine::ExecSorted(db_.get(),
                                 "select qty from items where id = 1");
  EXPECT_EQ(rows, (std::vector<std::string>{"10"}));
  EXPECT_FALSE(Update("update items set nope = 1").ok());
  EXPECT_FALSE(Update("update items set qty = 1, qty = 2").ok());
}

TEST_F(UpdateDeleteExecTest, UpdateWithSubquery) {
  auto n = Update(
      "update items set qty = (select max(amount) from orders) "
      "where id in (select item_id from orders)");
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(*n, 3u);
  auto rows = engine::ExecSorted(db_.get(),
                                 "select qty from items where id = 3");
  EXPECT_EQ(rows, (std::vector<std::string>{"4"}));
}

TEST_F(UpdateDeleteExecTest, DeleteMatchingRows) {
  auto n = Delete("delete from orders where amount < 2");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 2u);
  EXPECT_EQ(db_->FindTable("orders")->num_rows(), 3u);
}

TEST_F(UpdateDeleteExecTest, DeleteAllWithoutWhere) {
  auto n = Delete("delete from orders");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 5u);
  EXPECT_EQ(db_->FindTable("orders")->num_rows(), 0u);
}

TEST_F(UpdateDeleteExecTest, DeleteNullPredicateKeepsRow) {
  // Rows where the predicate is NULL are not deleted.
  auto n = Delete("delete from items where qty > 0");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 4u);  // id 3 has NULL qty, survives.
  EXPECT_EQ(db_->FindTable("items")->num_rows(), 1u);
}

class MonitorWriteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<engine::Database>();
    workload::PatientsConfig config;
    config.num_patients = 6;
    config.samples_per_patient = 2;
    ASSERT_TRUE(workload::BuildPatientsDatabase(db_.get(), config).ok());
    catalog_ = std::make_unique<AccessControlCatalog>(db_.get());
    ASSERT_TRUE(catalog_->Initialize().ok());
    ASSERT_TRUE(workload::ConfigurePatientsAccessControl(catalog_.get()).ok());
    monitor_ = std::make_unique<EnforcementMonitor>(db_.get(), catalog_.get());
    manager_ = std::make_unique<PolicyManager>(catalog_.get());

    // Full rights under p1 for patients 0-2; nothing for 3-5.
    Policy policy;
    policy.table = "users";
    PolicyRule direct;
    direct.columns = {"user_id", "watch_id", "nutritional_profile_id"};
    direct.purposes = {"p1"};
    direct.action_type = ActionType::Direct(Multiplicity::kSingle,
                                            Aggregation::kNoAggregation,
                                            JointAccess::All());
    PolicyRule indirect = direct;
    indirect.action_type = ActionType::Indirect(JointAccess::All());
    policy.rules = {direct, indirect};
    for (int p = 0; p < 3; ++p) {
      ASSERT_TRUE(manager_
                      ->AttachWhere(policy, "user_id",
                                    Value::String("user" + std::to_string(p)))
                      .ok());
    }
  }

  std::unique_ptr<engine::Database> db_;
  std::unique_ptr<AccessControlCatalog> catalog_;
  std::unique_ptr<EnforcementMonitor> monitor_;
  std::unique_ptr<PolicyManager> manager_;
};

TEST_F(MonitorWriteTest, UpdateOnlyTouchesCompliantTuples) {
  auto n = monitor_->ExecuteUpdate(
      "update users set watch_id = 'reassigned'", "p1");
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(*n, 3u);  // Only the tuples with policies.
  auto rs = monitor_->ExecuteUnrestricted(
      "select count(*) from users where watch_id like 'reassigned'");
  EXPECT_EQ(rs->rows[0][0].AsInt(), 3);
}

TEST_F(MonitorWriteTest, UpdateDeniedUnderWrongPurpose) {
  auto n = monitor_->ExecuteUpdate(
      "update users set watch_id = 'reassigned'", "p6");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);
}

TEST_F(MonitorWriteTest, UpdateCannotTouchPolicyColumn) {
  auto n = monitor_->ExecuteUpdate("update users set policy = null", "p1");
  EXPECT_EQ(n.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(MonitorWriteTest, UpdateRhsCannotReadPolicyColumn) {
  auto n = monitor_->ExecuteUpdate(
      "update users set watch_id = policy", "p1");
  EXPECT_EQ(n.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(MonitorWriteTest, DeleteOnlyRemovesCompliantTuples) {
  auto n = monitor_->ExecuteDelete("delete from users", "p1");
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(*n, 3u);
  EXPECT_EQ(db_->FindTable("users")->num_rows(), 3u);
  // The remaining tuples are exactly the policy-less ones.
  auto rs = monitor_->ExecuteUnrestricted("select user_id from users");
  for (const auto& row : rs->rows) {
    const std::string id = row[0].AsString();
    EXPECT_TRUE(id == "user3" || id == "user4" || id == "user5") << id;
  }
}

TEST_F(MonitorWriteTest, DeleteHonoursWhere) {
  auto n = monitor_->ExecuteDelete(
      "delete from users where user_id like 'user1'", "p1");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1u);
  n = monitor_->ExecuteDelete(
      "delete from users where user_id like 'user4'", "p1");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);  // No policy -> not deletable.
}

TEST_F(MonitorWriteTest, WritesRequireAuthorizationWhenUserGiven) {
  auto n = monitor_->ExecuteUpdate("update users set watch_id = 'w'", "p1",
                                   "mallory");
  EXPECT_EQ(n.status().code(), StatusCode::kPermissionDenied);
  auto d = monitor_->ExecuteDelete("delete from users", "p1", "mallory");
  EXPECT_EQ(d.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(MonitorWriteTest, DeleteRequiresFullReadAccess) {
  // Grant only aggregate access to watch_id under p6: full direct access is
  // absent, so deletion under p6 touches nothing even though some p6 rule
  // exists.
  Policy narrow;
  narrow.table = "users";
  PolicyRule agg;
  agg.columns = {"watch_id"};
  agg.purposes = {"p6"};
  agg.action_type = ActionType::Direct(Multiplicity::kSingle,
                                       Aggregation::kAggregation,
                                       JointAccess::All());
  narrow.rules = {agg};
  ASSERT_TRUE(
      manager_->AttachWhere(narrow, "user_id", Value::String("user0")).ok());
  auto n = monitor_->ExecuteDelete("delete from users", "p6");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);
}

}  // namespace
}  // namespace aapac::core
