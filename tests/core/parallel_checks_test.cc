// Regression coverage for compliance-check accounting under morsel
// parallelism. The complies_with UDF bumps an engine-owned thread_local
// tally; the morsel driver folds the deltas of pool worker threads back
// into the calling thread at operator close, and the monitor feeds the
// per-statement delta into the enforce.compliance_checks counter (and the
// audit log's `checks` column) exactly once per statement. A shared atomic
// bumped from the scan loop would stay globally correct but could not
// attribute checks to statements; the per-morsel fold keeps both exact, and
// parallel execution must spend exactly as many checks as serial.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/catalog.h"
#include "core/monitor.h"
#include "engine/database.h"
#include "server/server.h"
#include "util/task_pool.h"
#include "workload/patients.h"
#include "workload/policies.h"
#include "workload/queries.h"

namespace aapac::core {
namespace {

struct Instance {
  std::unique_ptr<engine::Database> db;
  std::unique_ptr<AccessControlCatalog> catalog;
  std::unique_ptr<EnforcementMonitor> monitor;

  Instance() {
    db = std::make_unique<engine::Database>();
    workload::PatientsConfig config;
    config.num_patients = 30;
    config.samples_per_patient = 40;  // 1200 sensed_data rows.
    EXPECT_TRUE(workload::BuildPatientsDatabase(db.get(), config).ok());
    catalog = std::make_unique<AccessControlCatalog>(db.get());
    EXPECT_TRUE(catalog->Initialize().ok());
    EXPECT_TRUE(workload::ConfigurePatientsAccessControl(catalog.get()).ok());
    workload::ScatteredPolicyConfig sp;
    sp.selectivity = 0.3;
    EXPECT_TRUE(workload::ApplyScatteredPolicies(catalog.get(), sp).ok());
    monitor =
        std::make_unique<EnforcementMonitor>(db.get(), catalog.get());
  }
};

TEST(ParallelChecksTest, ParallelExecutionSpendsExactlySerialCheckCount) {
  Instance inst;
  util::TaskPool pool(3);
  for (const auto& q : workload::PaperQueries()) {
    inst.monitor->SetParallelism(nullptr, 1);
    inst.monitor->ResetComplianceChecks();
    ASSERT_TRUE(inst.monitor->ExecuteQuery(q.sql, "p3").ok()) << q.name;
    const uint64_t serial = inst.monitor->compliance_checks();
    ASSERT_GT(serial, 0u) << q.name;

    inst.monitor->SetParallelism(&pool, 4, /*morsel_rows=*/64);
    inst.monitor->ResetComplianceChecks();
    ASSERT_TRUE(inst.monitor->ExecuteQuery(q.sql, "p3").ok()) << q.name;
    EXPECT_EQ(inst.monitor->compliance_checks(), serial)
        << q.name << ": morsel workers lost or double-counted checks";
  }
}

TEST(ParallelChecksTest, AuditChecksColumnStaysPerStatementExact) {
  // Serial ground truth per query first; then the same statements run
  // through the server with intra-query parallelism and concurrent clients,
  // and every audit row must still carry its statement's exact check count.
  Instance inst;
  std::vector<workload::BenchQuery> queries = workload::PaperQueries();
  std::vector<uint64_t> expected;
  for (const auto& q : queries) {
    inst.monitor->ResetComplianceChecks();
    ASSERT_TRUE(inst.monitor->ExecuteQuery(q.sql, "p3").ok()) << q.name;
    expected.push_back(inst.monitor->compliance_checks());
  }
  ASSERT_TRUE(inst.monitor->EnableAuditLog().ok());

  {
    server::ServerOptions options;
    options.threads = 4;
    options.query_threads = 2;
    options.morsel_rows = 64;
    server::EnforcementServer server(inst.monitor.get(), options);
    const size_t kClients = 3;
    std::vector<std::thread> clients;
    for (size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&] {
        auto sid = server.OpenSession("", "p3");
        ASSERT_TRUE(sid.ok());
        for (const auto& q : queries) {
          auto rs = server.Execute(*sid, q.sql);
          EXPECT_TRUE(rs.ok()) << q.name << ": " << rs.status();
        }
      });
    }
    for (auto& t : clients) t.join();
    server.Shutdown();
  }

  auto audit = inst.monitor->ExecuteUnrestricted(
      "select qy, checks from audit_log");
  ASSERT_TRUE(audit.ok()) << audit.status();
  size_t matched = 0;
  for (const auto& row : audit->rows) {
    ASSERT_EQ(row.size(), 2u);
    const std::string sql_text = row[0].ToString();
    for (size_t i = 0; i < queries.size(); ++i) {
      if (sql_text != queries[i].sql) continue;
      EXPECT_EQ(row[1].ToString(), std::to_string(expected[i]))
          << queries[i].name
          << ": audit checks drifted under parallel execution";
      ++matched;
      break;
    }
  }
  // 3 clients x 8 paper queries, every one audited with exact checks.
  EXPECT_EQ(matched, 3u * queries.size());
}

}  // namespace
}  // namespace aapac::core
