// Property tests for the enforcement rewriter, over randomized queries from
// the differential harness's seeded generator:
//
//  * Idempotence — rewriting an already-rewritten AST yields the same SQL
//    text and the same number of complies_with conjuncts as the first pass
//    (the rewriter strips its own synthetic conjuncts and re-derives rather
//    than stacking duplicates). Rewritten *text* resubmitted as a user
//    query must still be denied; that boundary is covered by
//    RewriterTest.RewrittenOutputCannotBeResubmitted.
//  * WHERE preservation — the user's original WHERE clause survives
//    verbatim as a conjunct of the rewritten WHERE.
//  * Cache transparency — a RewriteCache hit returns an entry whose
//    statement prints exactly like a cold rewrite of the same (sql,
//    purpose, role) triple, for whitespace/case variants that normalize to
//    the same key.

#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <string>

#include "core/catalog.h"
#include "core/monitor.h"
#include "core/rewriter.h"
#include "engine/database.h"
#include "server/rewrite_cache.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "tests/util/query_gen.h"
#include "workload/patients.h"
#include "workload/policies.h"

namespace aapac::core {
namespace {

constexpr uint64_t kSeed = 987654321;
constexpr size_t kTriples = 120;

size_t CountOccurrences(const std::string& text, const std::string& needle) {
  size_t count = 0;
  for (size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

struct Instance {
  std::unique_ptr<engine::Database> db;
  std::unique_ptr<AccessControlCatalog> catalog;
  std::unique_ptr<EnforcementMonitor> monitor;

  Instance() {
    db = std::make_unique<engine::Database>();
    workload::PatientsConfig config;
    config.num_patients = 10;
    config.samples_per_patient = 5;
    EXPECT_TRUE(workload::BuildPatientsDatabase(db.get(), config).ok());
    catalog = std::make_unique<AccessControlCatalog>(db.get());
    EXPECT_TRUE(catalog->Initialize().ok());
    EXPECT_TRUE(workload::ConfigurePatientsAccessControl(catalog.get()).ok());
    workload::ScatteredPolicyConfig sp;
    sp.selectivity = 0.3;
    EXPECT_TRUE(workload::ApplyScatteredPolicies(catalog.get(), sp).ok());
    monitor =
        std::make_unique<EnforcementMonitor>(db.get(), catalog.get());
  }
};

TEST(RewriterPropertyTest, RewriteIsIdempotentOnTheAst) {
  Instance inst;
  const QueryRewriter& rewriter = inst.monitor->rewriter();
  testutil::QueryGenerator gen(kSeed);
  for (size_t i = 0; i < kTriples; ++i) {
    const testutil::GenQuery q = gen.Next();
    const std::string ctx = "query#" + std::to_string(i) + " purpose=" +
                            q.purpose + " sql=" + q.sql;
    auto stmt = sql::ParseSelect(q.sql);
    ASSERT_TRUE(stmt.ok()) << ctx;
    ASSERT_TRUE(rewriter.Rewrite(stmt->get(), q.purpose).ok()) << ctx;
    const std::string once = sql::ToSql(**stmt);
    const size_t conjuncts_once = CountOccurrences(once, "complies_with(");
    EXPECT_GT(conjuncts_once, 0u) << ctx;  // All three tables are protected.

    ASSERT_TRUE(rewriter.Rewrite(stmt->get(), q.purpose).ok()) << ctx;
    const std::string twice = sql::ToSql(**stmt);
    EXPECT_EQ(twice, once) << ctx << "\n  re-rewriting changed the statement";
    EXPECT_EQ(CountOccurrences(twice, "complies_with("), conjuncts_once)
        << ctx << "\n  duplicate enforcement conjuncts were stacked";
  }
}

TEST(RewriterPropertyTest, OriginalWhereSurvivesAsConjunct) {
  Instance inst;
  const QueryRewriter& rewriter = inst.monitor->rewriter();
  testutil::QueryGenerator gen(kSeed + 1);
  size_t with_where = 0;
  for (size_t i = 0; i < kTriples; ++i) {
    const testutil::GenQuery q = gen.Next();
    const std::string ctx = "query#" + std::to_string(i) + " purpose=" +
                            q.purpose + " sql=" + q.sql;
    auto original = sql::ParseSelect(q.sql);
    ASSERT_TRUE(original.ok()) << ctx;
    if ((*original)->where == nullptr) continue;
    const std::string original_where = sql::ToSql(*(*original)->where);
    // A sub-query nested inside the WHERE is itself rewritten, so the
    // clause's text legitimately changes; textual preservation applies to
    // sub-query-free WHEREs (the structural conjunct property for nested
    // shapes is covered by the idempotence test and the differential
    // harness).
    if (original_where.find("select") != std::string::npos) continue;
    ++with_where;

    auto stmt = sql::ParseSelect(q.sql);
    ASSERT_TRUE(stmt.ok()) << ctx;
    ASSERT_TRUE(rewriter.Rewrite(stmt->get(), q.purpose).ok()) << ctx;
    ASSERT_NE((*stmt)->where, nullptr) << ctx;
    const std::string rewritten_where = sql::ToSql(*(*stmt)->where);
    EXPECT_NE(rewritten_where.find(original_where), std::string::npos)
        << ctx << "\n  original WHERE [" << original_where
        << "] not preserved in [" << rewritten_where << "]";
  }
  EXPECT_GE(with_where, kTriples / 3);  // The generator mix must filter often.
}

TEST(RewriterPropertyTest, CacheHitPrintsExactlyLikeColdRewrite) {
  Instance inst;
  server::RewriteCache cache(256);
  testutil::QueryGenerator gen(kSeed + 2);
  const uint64_t version = inst.catalog->version();
  for (size_t i = 0; i < kTriples; ++i) {
    const testutil::GenQuery q = gen.Next();
    const std::string role = (i % 3 == 0) ? "" : "role" + std::to_string(i % 3);
    const std::string ctx = "query#" + std::to_string(i) + " purpose=" +
                            q.purpose + " role=" + role + " sql=" + q.sql;

    // Cold rewrite through the monitor's cacheable pipeline stage.
    auto cold = inst.monitor->Prepare(q.sql, q.purpose);
    ASSERT_TRUE(cold.ok()) << ctx;
    const std::string cold_print = sql::ToSql(**cold);

    // (The generator may repeat a triple; Insert then replaces the entry,
    // which is exactly the server's behaviour on a racing double-miss.)
    const std::string normalized = server::RewriteCache::NormalizeSql(q.sql);
    auto entry = std::make_shared<server::RewriteCache::Entry>();
    entry->rewritten_sql = cold_print;
    entry->stmt = std::move(*cold);
    entry->version = version;
    cache.Insert(normalized, q.purpose, role, entry);

    // A whitespace/case variant of the same text must normalize to the same
    // key, and the hit must print exactly like a fresh cold rewrite.
    std::string variant = "  " + q.sql + "  ";
    for (size_t c = 0; c < 6 && c < variant.size(); ++c) {
      variant[c] = static_cast<char>(std::toupper(variant[c]));
    }
    auto hit = cache.Lookup(server::RewriteCache::NormalizeSql(variant),
                            q.purpose, role, version);
    ASSERT_NE(hit, nullptr) << ctx;
    auto cold2 = inst.monitor->Prepare(q.sql, q.purpose);
    ASSERT_TRUE(cold2.ok()) << ctx;
    EXPECT_EQ(sql::ToSql(*hit->stmt), sql::ToSql(**cold2))
        << ctx << "\n  cached AST diverged from a cold rewrite";
    EXPECT_EQ(hit->rewritten_sql, sql::ToSql(**cold2)) << ctx;
  }
}

}  // namespace
}  // namespace aapac::core
