// Role-based purpose administration (future-work item 3): role definition,
// purpose grants, user assignments, and the monitor's combined
// direct-or-role authorization check.

#include "core/rbac.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/monitor.h"
#include "workload/patients.h"
#include "workload/policies.h"

namespace aapac::core {
namespace {

class RbacTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<engine::Database>();
    workload::PatientsConfig config;
    config.num_patients = 5;
    config.samples_per_patient = 2;
    ASSERT_TRUE(workload::BuildPatientsDatabase(db_.get(), config).ok());
    catalog_ = std::make_unique<AccessControlCatalog>(db_.get());
    ASSERT_TRUE(catalog_->Initialize().ok());
    ASSERT_TRUE(workload::ConfigurePatientsAccessControl(catalog_.get()).ok());
    roles_ = std::make_unique<RoleManager>(catalog_.get());
    ASSERT_TRUE(roles_->Initialize().ok());
  }

  std::unique_ptr<engine::Database> db_;
  std::unique_ptr<AccessControlCatalog> catalog_;
  std::unique_ptr<RoleManager> roles_;
};

TEST_F(RbacTest, InitializeCreatesMetadataTables) {
  EXPECT_NE(db_->FindTable("rr"), nullptr);
  EXPECT_NE(db_->FindTable("ur"), nullptr);
}

TEST_F(RbacTest, DefineGrantAssign) {
  ASSERT_TRUE(roles_->DefineRole("physician").ok());
  EXPECT_TRUE(roles_->RoleExists("physician"));
  EXPECT_FALSE(roles_->DefineRole("physician").ok());

  ASSERT_TRUE(roles_->GrantPurposeToRole("physician", "p1").ok());
  ASSERT_TRUE(roles_->GrantPurposeToRole("physician", "p3").ok());
  EXPECT_FALSE(roles_->GrantPurposeToRole("physician", "p99").ok());
  EXPECT_FALSE(roles_->GrantPurposeToRole("nurse", "p1").ok());
  EXPECT_EQ(roles_->PurposesOfRole("physician"),
            (std::set<std::string>{"p1", "p3"}));

  ASSERT_TRUE(roles_->AssignUserToRole("alice", "physician").ok());
  EXPECT_FALSE(roles_->AssignUserToRole("alice", "nurse").ok());
  EXPECT_EQ(roles_->RolesOfUser("alice"),
            (std::set<std::string>{"physician"}));
  EXPECT_EQ(roles_->PurposesOfUser("alice"),
            (std::set<std::string>{"p1", "p3"}));
}

TEST_F(RbacTest, AuthorizationViaRoles) {
  ASSERT_TRUE(roles_->DefineRole("researcher").ok());
  ASSERT_TRUE(roles_->GrantPurposeToRole("researcher", "p6").ok());
  ASSERT_TRUE(roles_->AssignUserToRole("bob", "researcher").ok());
  EXPECT_TRUE(roles_->IsAuthorizedViaRoles("bob", "p6"));
  EXPECT_FALSE(roles_->IsAuthorizedViaRoles("bob", "p1"));
  EXPECT_FALSE(roles_->IsAuthorizedViaRoles("carol", "p6"));
  // Combined check also honours direct grants.
  ASSERT_TRUE(catalog_->AuthorizeUser("bob", "p1").ok());
  EXPECT_TRUE(roles_->IsUserAuthorized("bob", "p1"));
  EXPECT_TRUE(roles_->IsUserAuthorized("bob", "p6"));
}

TEST_F(RbacTest, RevokeAndRemove) {
  ASSERT_TRUE(roles_->DefineRole("r").ok());
  ASSERT_TRUE(roles_->GrantPurposeToRole("r", "p2").ok());
  ASSERT_TRUE(roles_->AssignUserToRole("u", "r").ok());
  ASSERT_TRUE(roles_->RevokePurposeFromRole("r", "p2").ok());
  EXPECT_FALSE(roles_->RevokePurposeFromRole("r", "p2").ok());
  EXPECT_FALSE(roles_->IsAuthorizedViaRoles("u", "p2"));
  ASSERT_TRUE(roles_->RemoveUserFromRole("u", "r").ok());
  EXPECT_FALSE(roles_->RemoveUserFromRole("u", "r").ok());
  EXPECT_TRUE(roles_->RolesOfUser("u").empty());
}

TEST_F(RbacTest, DropRoleCascades) {
  ASSERT_TRUE(roles_->DefineRole("temp").ok());
  ASSERT_TRUE(roles_->GrantPurposeToRole("temp", "p4").ok());
  ASSERT_TRUE(roles_->AssignUserToRole("dave", "temp").ok());
  ASSERT_TRUE(roles_->DropRole("temp").ok());
  EXPECT_FALSE(roles_->RoleExists("temp"));
  EXPECT_FALSE(roles_->IsAuthorizedViaRoles("dave", "p4"));
  EXPECT_FALSE(roles_->DropRole("temp").ok());
}

TEST_F(RbacTest, HandlePurposeRemoved) {
  ASSERT_TRUE(roles_->DefineRole("r").ok());
  ASSERT_TRUE(roles_->GrantPurposeToRole("r", "p5").ok());
  ASSERT_TRUE(catalog_->RemovePurpose("p5").ok());
  ASSERT_TRUE(roles_->HandlePurposeRemoved("p5").ok());
  EXPECT_TRUE(roles_->PurposesOfRole("r").empty());
}

TEST_F(RbacTest, MonitorHonoursRoleAuthorization) {
  workload::ScatteredPolicyConfig config;
  config.selectivity = 0.0;
  ASSERT_TRUE(workload::ApplyScatteredPolicies(catalog_.get(), config).ok());

  EnforcementMonitor monitor(db_.get(), catalog_.get());
  ASSERT_TRUE(roles_->DefineRole("researcher").ok());
  ASSERT_TRUE(roles_->GrantPurposeToRole("researcher", "p6").ok());
  ASSERT_TRUE(roles_->AssignUserToRole("eve", "researcher").ok());

  // Without the role manager hooked up, eve is rejected.
  auto rs = monitor.ExecuteQuery("select user_id from users", "p6", "eve");
  EXPECT_EQ(rs.status().code(), StatusCode::kPermissionDenied);

  monitor.SetRoleManager(roles_.get());
  rs = monitor.ExecuteQuery("select user_id from users", "p6", "eve");
  EXPECT_TRUE(rs.ok()) << rs.status();
  // Role grants p6 only.
  rs = monitor.ExecuteQuery("select user_id from users", "p1", "eve");
  EXPECT_EQ(rs.status().code(), StatusCode::kPermissionDenied);
  // Unhook: back to direct-only.
  monitor.SetRoleManager(nullptr);
  rs = monitor.ExecuteQuery("select user_id from users", "p6", "eve");
  EXPECT_EQ(rs.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(RbacTest, MetadataQueryableViaSql) {
  ASSERT_TRUE(roles_->DefineRole("auditor").ok());
  ASSERT_TRUE(roles_->GrantPurposeToRole("auditor", "p5").ok());
  ASSERT_TRUE(roles_->AssignUserToRole("frank", "auditor").ok());
  engine::Executor exec(db_.get());
  auto rs = exec.ExecuteSql("select rn, pi from rr where rn like 'auditor'");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->rows.size(), 1u);
  EXPECT_EQ(rs->rows[0][1].AsString(), "p5");
  rs = exec.ExecuteSql("select ui from ur where rn like 'auditor'");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 1u);
}

}  // namespace
}  // namespace aapac::core
