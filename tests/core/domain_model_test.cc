// Domain model (§4): data categories, joint access, action types and the
// Def. 5 compliance relation; purpose sets and their ordering criterion.

#include <gtest/gtest.h>

#include "core/action_type.h"
#include "core/category.h"
#include "core/policy.h"
#include "core/purpose.h"
#include "core/signature.h"

namespace aapac::core {
namespace {

TEST(CategoryTest, NamesAndCodes) {
  EXPECT_STREQ(DataCategoryToString(DataCategory::kIdentifier), "identifier");
  EXPECT_STREQ(DataCategoryToString(DataCategory::kQuasiIdentifier),
               "quasi_identifier");
  EXPECT_STREQ(DataCategoryToString(DataCategory::kSensitive), "sensitive");
  EXPECT_STREQ(DataCategoryToString(DataCategory::kGeneric), "generic");
  EXPECT_EQ(DataCategoryCode(DataCategory::kIdentifier), 'i');
  EXPECT_EQ(DataCategoryCode(DataCategory::kQuasiIdentifier), 'q');
  EXPECT_EQ(DataCategoryCode(DataCategory::kSensitive), 's');
  EXPECT_EQ(DataCategoryCode(DataCategory::kGeneric), 'g');
}

TEST(CategoryTest, ParsingAcceptsNamesAndCodes) {
  EXPECT_EQ(*DataCategoryFromString("identifier"), DataCategory::kIdentifier);
  EXPECT_EQ(*DataCategoryFromString("I"), DataCategory::kIdentifier);
  EXPECT_EQ(*DataCategoryFromString("quasi identifier"),
            DataCategory::kQuasiIdentifier);
  EXPECT_EQ(*DataCategoryFromString("QUASI_IDENTIFIER"),
            DataCategory::kQuasiIdentifier);
  EXPECT_EQ(*DataCategoryFromString("s"), DataCategory::kSensitive);
  EXPECT_EQ(*DataCategoryFromString("generic"), DataCategory::kGeneric);
  EXPECT_FALSE(DataCategoryFromString("secret").ok());
}

TEST(JointAccessTest, AllowsAndSet) {
  JointAccess ja;
  EXPECT_FALSE(ja.Allows(DataCategory::kSensitive));
  ja.Set(DataCategory::kSensitive, true);
  ja.Set(DataCategory::kGeneric, true);
  EXPECT_TRUE(ja.Allows(DataCategory::kSensitive));
  EXPECT_TRUE(ja.Allows(DataCategory::kGeneric));
  EXPECT_FALSE(ja.Allows(DataCategory::kIdentifier));
  ja.Set(DataCategory::kSensitive, false);
  EXPECT_FALSE(ja.Allows(DataCategory::kSensitive));
}

TEST(JointAccessTest, SubsetRelation) {
  const JointAccess none = JointAccess::None();
  const JointAccess all = JointAccess::All();
  const JointAccess qs{false, true, true, false};
  EXPECT_TRUE(none.IsSubsetOf(none));
  EXPECT_TRUE(none.IsSubsetOf(all));
  EXPECT_TRUE(qs.IsSubsetOf(all));
  EXPECT_FALSE(all.IsSubsetOf(qs));
  EXPECT_TRUE(qs.IsSubsetOf(qs));
  EXPECT_FALSE((JointAccess{true, false, false, false}).IsSubsetOf(qs));
}

TEST(JointAccessTest, ToStringMatchesPaperNotation) {
  EXPECT_EQ((JointAccess{true, true, false, false}).ToString(), "<a,a,n,n>");
  EXPECT_EQ(JointAccess::None().ToString(), "<n,n,n,n>");
  EXPECT_EQ(JointAccess::All().ToString(), "<a,a,a,a>");
}

TEST(ActionTypeTest, ToStringNotation) {
  EXPECT_EQ(ActionType::Direct(Multiplicity::kSingle,
                               Aggregation::kAggregation,
                               JointAccess{true, true, false, false})
                .ToString(),
            "<d,s,a,<a,a,n,n>>");
  EXPECT_EQ(ActionType::Indirect(JointAccess::None()).ToString(),
            "<i,_,_,<n,n,n,n>>");
}

// Def. 5 compliance matrix.
TEST(ActionTypeComplianceTest, IndirectionMustMatch) {
  const ActionType direct = ActionType::Direct(
      Multiplicity::kSingle, Aggregation::kNoAggregation, JointAccess::All());
  const ActionType indirect = ActionType::Indirect(JointAccess::All());
  ActionType indirect_rule = indirect;
  EXPECT_FALSE(ActionTypeComplies(direct, indirect_rule));
  EXPECT_FALSE(ActionTypeComplies(indirect, direct));
  EXPECT_TRUE(ActionTypeComplies(direct, direct));
  EXPECT_TRUE(ActionTypeComplies(indirect, indirect_rule));
}

TEST(ActionTypeComplianceTest, MultiplicityAndAggregationMustMatchWhenSet) {
  const JointAccess all = JointAccess::All();
  const ActionType sig_sa =
      ActionType::Direct(Multiplicity::kSingle, Aggregation::kAggregation, all);
  EXPECT_TRUE(ActionTypeComplies(
      sig_sa, ActionType::Direct(Multiplicity::kSingle,
                                 Aggregation::kAggregation, all)));
  EXPECT_FALSE(ActionTypeComplies(
      sig_sa, ActionType::Direct(Multiplicity::kMultiple,
                                 Aggregation::kAggregation, all)));
  EXPECT_FALSE(ActionTypeComplies(
      sig_sa, ActionType::Direct(Multiplicity::kSingle,
                                 Aggregation::kNoAggregation, all)));
}

TEST(ActionTypeComplianceTest, BottomSignatureDimensionsMatchAnything) {
  // Indirect signatures carry ⊥ multiplicity/aggregation (Fig. 3) and
  // comply with indirect rules regardless of the rule's ms/ag values.
  const ActionType sig = ActionType::Indirect(JointAccess::None());
  ActionType rule = ActionType::Indirect(JointAccess::All());
  rule.multiplicity = Multiplicity::kMultiple;
  rule.aggregation = Aggregation::kNoAggregation;
  EXPECT_TRUE(ActionTypeComplies(sig, rule));
}

TEST(ActionTypeComplianceTest, SetSignatureDimensionNeedsRuleDimension) {
  // A signature that asserts single-source access cannot comply with a rule
  // that leaves the dimension unset.
  ActionType sig = ActionType::Direct(Multiplicity::kSingle,
                                      Aggregation::kAggregation,
                                      JointAccess::None());
  ActionType rule = sig;
  rule.multiplicity = std::nullopt;
  EXPECT_FALSE(ActionTypeComplies(sig, rule));
  rule = sig;
  rule.aggregation = std::nullopt;
  EXPECT_FALSE(ActionTypeComplies(sig, rule));
}

TEST(ActionTypeComplianceTest, JointAccessSubsetRequired) {
  const ActionType rule = ActionType::Direct(
      Multiplicity::kSingle, Aggregation::kAggregation,
      JointAccess{true, true, true, false});  // Paper Example 7.
  const ActionType sig_ok = ActionType::Direct(
      Multiplicity::kSingle, Aggregation::kAggregation,
      JointAccess{true, true, false, false});
  const ActionType sig_bad = ActionType::Direct(
      Multiplicity::kSingle, Aggregation::kAggregation,
      JointAccess{true, true, false, true});  // Generic not allowed.
  EXPECT_TRUE(ActionTypeComplies(sig_ok, rule));
  EXPECT_FALSE(ActionTypeComplies(sig_bad, rule));
}

TEST(PurposeSetTest, MaintainsAlphabeticalOrder) {
  PurposeSet ps;
  ASSERT_TRUE(ps.Add({"p3", "ops"}).ok());
  ASSERT_TRUE(ps.Add({"p1", "treatment"}).ok());
  ASSERT_TRUE(ps.Add({"p2", "payment"}).ok());
  EXPECT_EQ(ps.size(), 3u);
  EXPECT_EQ(ps.ordered()[0].id, "p1");
  EXPECT_EQ(ps.ordered()[2].id, "p3");
  EXPECT_EQ(*ps.IndexOf("p2"), 1u);
  EXPECT_FALSE(ps.IndexOf("p9").has_value());
}

TEST(PurposeSetTest, RejectsDuplicatesAndMissingRemovals) {
  PurposeSet ps;
  ASSERT_TRUE(ps.Add({"p1", "a"}).ok());
  EXPECT_EQ(ps.Add({"p1", "b"}).code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(ps.Remove("p1").ok());
  EXPECT_EQ(ps.Remove("p1").code(), StatusCode::kNotFound);
}

TEST(PurposeSetTest, ResolveByIdOrDescription) {
  PurposeSet ps;
  ASSERT_TRUE(ps.Add({"p6", "research"}).ok());
  EXPECT_EQ(*ps.Resolve("p6"), "p6");
  EXPECT_EQ(*ps.Resolve("research"), "p6");
  EXPECT_EQ(*ps.Resolve("RESEARCH"), "p6");
  EXPECT_FALSE(ps.Resolve("sale").ok());
}

TEST(PolicyTest, ToStringMentionsParts) {
  Policy p;
  p.table = "t";
  PolicyRule r;
  r.columns = {"a", "b"};
  r.purposes = {"p1"};
  r.action_type = ActionType::Indirect(JointAccess::All());
  p.rules = {r};
  const std::string s = p.ToString();
  EXPECT_NE(s.find("policy on t"), std::string::npos);
  EXPECT_NE(s.find("a,b"), std::string::npos);
  EXPECT_NE(s.find("p1"), std::string::npos);
  EXPECT_NE(s.find("<i,"), std::string::npos);
}

TEST(SignatureTest, ToStringNests) {
  QuerySignature qs;
  qs.id = "abc";
  qs.purpose = "p1";
  TableSignature ts;
  ts.table = "t";
  ts.binding = "t";
  ActionSignature as;
  as.columns = {"x"};
  as.action_type = ActionType::Indirect(JointAccess::None());
  ts.actions.push_back(as);
  qs.tables.push_back(std::move(ts));
  const std::string s = qs.ToString();
  EXPECT_NE(s.find("abc"), std::string::npos);
  EXPECT_NE(s.find("{x}"), std::string::npos);
}

}  // namespace
}  // namespace aapac::core
