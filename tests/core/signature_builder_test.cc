// Signature derivation (§5.2) beyond the Fig. 3 worked example: multiplicity
// and aggregation detection, star items, indirect clauses, joint-access
// unions, aliases, derived tables, sub-query recursion and error handling.

#include "core/signature_builder.h"

#include <gtest/gtest.h>

#include <memory>

#include "sql/parser.h"
#include "workload/patients.h"

namespace aapac::core {
namespace {

class SignatureBuilderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<engine::Database>();
    workload::PatientsConfig config;
    config.num_patients = 2;
    config.samples_per_patient = 2;
    ASSERT_TRUE(workload::BuildPatientsDatabase(db_.get(), config).ok());
    catalog_ = std::make_unique<AccessControlCatalog>(db_.get());
    ASSERT_TRUE(catalog_->Initialize().ok());
    ASSERT_TRUE(workload::ConfigurePatientsAccessControl(catalog_.get()).ok());
    builder_ = std::make_unique<SignatureBuilder>(catalog_.get());
  }

  std::unique_ptr<QuerySignature> Derive(const std::string& sql,
                                         const std::string& purpose = "p1") {
    auto stmt = sql::ParseSelect(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status();
    auto qs = builder_->Derive(**stmt, purpose, sql);
    EXPECT_TRUE(qs.ok()) << sql << " -> " << qs.status();
    return qs.ok() ? std::move(*qs) : nullptr;
  }

  static const TableSignature* Find(const QuerySignature& qs,
                                    const std::string& binding) {
    for (const auto& ts : qs.tables) {
      if (ts.binding == binding) return &ts;
    }
    return nullptr;
  }

  static const ActionSignature* FindAction(const TableSignature& ts,
                                           const std::string& column,
                                           Indirection ia) {
    for (const auto& as : ts.actions) {
      if (as.columns.count(column) > 0 && as.action_type.indirection == ia) {
        return &as;
      }
    }
    return nullptr;
  }

  std::unique_ptr<engine::Database> db_;
  std::unique_ptr<AccessControlCatalog> catalog_;
  std::unique_ptr<SignatureBuilder> builder_;
};

TEST_F(SignatureBuilderTest, BareColumnIsDirectSingleNoAggregation) {
  auto qs = Derive("select temperature from sensed_data");
  const TableSignature* ts = Find(*qs, "sensed_data");
  ASSERT_NE(ts, nullptr);
  const ActionSignature* as =
      FindAction(*ts, "temperature", Indirection::kDirect);
  ASSERT_NE(as, nullptr);
  EXPECT_EQ(*as->action_type.multiplicity, Multiplicity::kSingle);
  EXPECT_EQ(*as->action_type.aggregation, Aggregation::kNoAggregation);
  // Only column accessed: joint access is empty.
  EXPECT_EQ(as->action_type.joint_access, JointAccess::None());
}

TEST_F(SignatureBuilderTest, AggregateArgumentIsAggregation) {
  auto qs = Derive("select avg(temperature) from sensed_data");
  const ActionSignature* as = FindAction(*Find(*qs, "sensed_data"),
                                         "temperature", Indirection::kDirect);
  ASSERT_NE(as, nullptr);
  EXPECT_EQ(*as->action_type.aggregation, Aggregation::kAggregation);
}

TEST_F(SignatureBuilderTest, CombinedExpressionIsMultipleSources) {
  // Paper Example 2: temperature - avg(temperature) combines two column
  // occurrences -> multiplicity "multiple" for both info tuples.
  auto qs = Derive("select temperature - avg(temperature) from sensed_data");
  const TableSignature* ts = Find(*qs, "sensed_data");
  ASSERT_NE(ts, nullptr);
  ASSERT_EQ(ts->actions.size(), 2u);  // (m, n) and (m, a) on temperature.
  for (const auto& as : ts->actions) {
    EXPECT_EQ(*as.action_type.multiplicity, Multiplicity::kMultiple);
  }
}

TEST_F(SignatureBuilderTest, TwoDistinctColumnsInOneItemAreMultiple) {
  auto qs = Derive("select temperature + beats from sensed_data");
  const TableSignature* ts = Find(*qs, "sensed_data");
  for (const auto& as : ts->actions) {
    EXPECT_EQ(*as.action_type.multiplicity, Multiplicity::kMultiple);
  }
  EXPECT_EQ(ts->actions.size(), 2u);
}

TEST_F(SignatureBuilderTest, SeparateItemsStaySingle) {
  auto qs = Derive("select temperature, beats from sensed_data");
  const TableSignature* ts = Find(*qs, "sensed_data");
  for (const auto& as : ts->actions) {
    EXPECT_EQ(*as.action_type.multiplicity, Multiplicity::kSingle);
  }
}

TEST_F(SignatureBuilderTest, CountStarYieldsNoDirectAccess) {
  auto qs = Derive("select count(*) from sensed_data");
  const TableSignature* ts = Find(*qs, "sensed_data");
  EXPECT_EQ(ts, nullptr);  // No column touched at all.
}

TEST_F(SignatureBuilderTest, WhereGroupHavingOrderAreIndirect) {
  auto qs = Derive(
      "select count(*) from sensed_data where temperature > 37 "
      "group by position having avg(beats) > 90 order by position");
  const TableSignature* ts = Find(*qs, "sensed_data");
  ASSERT_NE(ts, nullptr);
  EXPECT_NE(FindAction(*ts, "temperature", Indirection::kIndirect), nullptr);
  EXPECT_NE(FindAction(*ts, "position", Indirection::kIndirect), nullptr);
  EXPECT_NE(FindAction(*ts, "beats", Indirection::kIndirect), nullptr);
  EXPECT_EQ(ts->actions.size(), 3u);
  // Indirect tuples carry ⊥ ms/ag.
  for (const auto& as : ts->actions) {
    EXPECT_FALSE(as.action_type.multiplicity.has_value());
    EXPECT_FALSE(as.action_type.aggregation.has_value());
  }
}

TEST_F(SignatureBuilderTest, DuplicateAccessesFold) {
  // temperature used twice in WHERE -> one indirect signature.
  auto qs = Derive(
      "select count(*) from sensed_data where temperature > 36 and "
      "temperature < 40");
  const TableSignature* ts = Find(*qs, "sensed_data");
  ASSERT_NE(ts, nullptr);
  EXPECT_EQ(ts->actions.size(), 1u);
}

TEST_F(SignatureBuilderTest, StarExpandsAndSkipsPolicyColumn) {
  auto qs = Derive("select * from users");
  const TableSignature* ts = Find(*qs, "users");
  ASSERT_NE(ts, nullptr);
  EXPECT_EQ(ts->actions.size(), 3u);  // user_id, watch_id, profile id.
  for (const auto& as : ts->actions) {
    EXPECT_EQ(as.columns.count("policy"), 0u);
    EXPECT_EQ(as.action_type.indirection, Indirection::kDirect);
  }
}

TEST_F(SignatureBuilderTest, JointAccessExcludesOwnColumn) {
  // user_id (identifier) and temperature (sensitive) jointly accessed with
  // quasi-identifier join keys.
  auto qs = Derive(
      "select user_id, temperature from users join sensed_data on "
      "users.watch_id = sensed_data.watch_id");
  const ActionSignature* user_id =
      FindAction(*Find(*qs, "users"), "user_id", Indirection::kDirect);
  ASSERT_NE(user_id, nullptr);
  EXPECT_EQ(user_id->action_type.joint_access,
            (JointAccess{false, true, true, false}));  // q (keys), s (temp).
  const ActionSignature* temp = FindAction(*Find(*qs, "sensed_data"),
                                           "temperature", Indirection::kDirect);
  ASSERT_NE(temp, nullptr);
  EXPECT_EQ(temp->action_type.joint_access,
            (JointAccess{true, true, false, false}));  // i (user_id), q.
}

TEST_F(SignatureBuilderTest, AliasedTablesUseBindingNames) {
  auto qs = Derive(
      "select s.beats from sensed_data s where s.temperature > 37");
  const TableSignature* ts = Find(*qs, "s");
  ASSERT_NE(ts, nullptr);
  EXPECT_EQ(ts->table, "sensed_data");
  EXPECT_EQ(ts->actions.size(), 2u);
}

TEST_F(SignatureBuilderTest, SubqueriesGetOwnSignatures) {
  auto qs = Derive(
      "select user_id from users where nutritional_profile_id in "
      "(select profile_id from nutritional_profiles where diet_type like "
      "'vegan')");
  ASSERT_EQ(qs->subqueries.size(), 1u);
  const QuerySignature& sub = *qs->subqueries[0];
  EXPECT_EQ(sub.purpose, "p1");
  const TableSignature* ts = Find(sub, "nutritional_profiles");
  ASSERT_NE(ts, nullptr);
  EXPECT_NE(FindAction(*ts, "profile_id", Indirection::kDirect), nullptr);
  EXPECT_NE(FindAction(*ts, "diet_type", Indirection::kIndirect), nullptr);
  // The outer level does not see nutritional_profiles.
  EXPECT_EQ(Find(*qs, "nutritional_profiles"), nullptr);
}

TEST_F(SignatureBuilderTest, DerivedTableColumnsTraceForJointAccess) {
  // q8 shape: outer accesses s1.b (= sensed_data.beats, sensitive), which
  // must show up in user_id's joint access, but sensed_data gets no outer
  // table signature (the inner level has its own).
  auto qs = Derive(
      "select user_id, avg(s1.b) from users join (select watch_id as w, "
      "beats as b from sensed_data where beats > 100) s1 on "
      "users.watch_id = s1.w group by user_id");
  const ActionSignature* user_id =
      FindAction(*Find(*qs, "users"), "user_id", Indirection::kDirect);
  ASSERT_NE(user_id, nullptr);
  EXPECT_TRUE(user_id->action_type.joint_access.sensitive);   // Via s1.b.
  EXPECT_TRUE(user_id->action_type.joint_access.quasi_identifier);
  EXPECT_EQ(Find(*qs, "sensed_data"), nullptr);
  ASSERT_EQ(qs->subqueries.size(), 1u);
  EXPECT_NE(Find(*qs->subqueries[0], "sensed_data"), nullptr);
}

TEST_F(SignatureBuilderTest, ActionSignaturesPerTableStayBounded) {
  // Signatures are per (column, action type): each column contributes at
  // most four direct shapes plus one indirect — a worst-case query over two
  // columns yields six distinct signatures, never an unbounded set.
  auto qs = Derive(
      "select temperature, avg(temperature), temperature + beats "
      "from sensed_data where temperature > 1 group by temperature, beats "
      "having min(temperature) > 0");
  const TableSignature* ts = Find(*qs, "sensed_data");
  ASSERT_NE(ts, nullptr);
  // temperature: (s,n), (s,a), (m,n), indirect; beats: (m,n), indirect.
  EXPECT_EQ(ts->actions.size(), 6u);
}

TEST_F(SignatureBuilderTest, UnknownPurposeRejected) {
  auto stmt = sql::ParseSelect("select user_id from users");
  auto qs = builder_->Derive(**stmt, "p99");
  EXPECT_FALSE(qs.ok());
  EXPECT_EQ(qs.status().code(), StatusCode::kNotFound);
}

TEST_F(SignatureBuilderTest, UnknownColumnRejected) {
  auto stmt = sql::ParseSelect("select nope from users");
  EXPECT_FALSE(builder_->Derive(**stmt, "p1").ok());
}

TEST_F(SignatureBuilderTest, AmbiguousColumnRejected) {
  auto stmt = sql::ParseSelect(
      "select watch_id from users join sensed_data on "
      "users.watch_id = sensed_data.watch_id");
  auto qs = builder_->Derive(**stmt, "p1");
  EXPECT_FALSE(qs.ok());
  EXPECT_EQ(qs.status().code(), StatusCode::kBindError);
}

TEST_F(SignatureBuilderTest, DuplicateBindingRejected) {
  auto stmt = sql::ParseSelect(
      "select users.user_id from users join users on "
      "users.user_id = users.user_id");
  EXPECT_FALSE(builder_->Derive(**stmt, "p1").ok());
}

TEST_F(SignatureBuilderTest, InfoTuplesExposeIntermediateState) {
  auto stmt = sql::ParseSelect(
      "select avg(beats) from sensed_data where temperature > 37");
  auto tuples = builder_->DeriveInfoTuples(**stmt, "p6");
  ASSERT_TRUE(tuples.ok());
  ASSERT_EQ(tuples->size(), 2u);
  for (const InfoTuple& t : *tuples) {
    EXPECT_EQ(t.purpose, "p6");
    EXPECT_EQ(t.table, "sensed_data");
    EXPECT_FALSE(t.ToString().empty());
  }
  EXPECT_EQ((*tuples)[0].category, DataCategory::kSensitive);
}

}  // namespace
}  // namespace aapac::core
