// Enforcement monitor behaviour (UDF semantics, counters, authorization)
// and the §5.6 complexity analysis (Eq. 1 plus the measured-below-bound
// property).

#include <gtest/gtest.h>

#include <memory>

#include "core/complexity.h"
#include "core/monitor.h"
#include "core/policy_manager.h"
#include "workload/patients.h"
#include "workload/policies.h"
#include "workload/queries.h"

namespace aapac::core {
namespace {

class MonitorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<engine::Database>();
    workload::PatientsConfig config;
    config.num_patients = 10;
    config.samples_per_patient = 5;
    ASSERT_TRUE(workload::BuildPatientsDatabase(db_.get(), config).ok());
    catalog_ = std::make_unique<AccessControlCatalog>(db_.get());
    ASSERT_TRUE(catalog_->Initialize().ok());
    ASSERT_TRUE(workload::ConfigurePatientsAccessControl(catalog_.get()).ok());
    monitor_ = std::make_unique<EnforcementMonitor>(db_.get(), catalog_.get());
  }

  void Scattered(double selectivity) {
    workload::ScatteredPolicyConfig config;
    config.selectivity = selectivity;
    ASSERT_TRUE(workload::ApplyScatteredPolicies(catalog_.get(), config).ok());
  }

  std::unique_ptr<engine::Database> db_;
  std::unique_ptr<AccessControlCatalog> catalog_;
  std::unique_ptr<EnforcementMonitor> monitor_;
};

TEST_F(MonitorTest, RegistersCompliesWithUdf) {
  EXPECT_TRUE(db_->functions().Contains("complies_with"));
}

TEST_F(MonitorTest, NullPolicyDenies) {
  // No policies attached: every tuple has a NULL policy -> nothing flows.
  auto rs = monitor_->ExecuteQuery("select user_id from users", "p1");
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(rs->rows.empty());
}

TEST_F(MonitorTest, ChecksCounterCountsInvocations) {
  Scattered(0.0);
  monitor_->ResetComplianceChecks();
  ASSERT_TRUE(monitor_->ExecuteQuery("select user_id from users", "p1").ok());
  // One action signature, ten tuples.
  EXPECT_EQ(monitor_->compliance_checks(), 10u);
  monitor_->ResetComplianceChecks();
  EXPECT_EQ(monitor_->compliance_checks(), 0u);
}

TEST_F(MonitorTest, ShortCircuitSkipsLaterChecks) {
  Scattered(0.0);
  monitor_->ResetComplianceChecks();
  // The user filter eliminates 9 of 10 users before any policy check.
  ASSERT_TRUE(monitor_
                  ->ExecuteQuery("select user_id from users where user_id "
                                 "like 'user3'",
                                 "p1")
                  .ok());
  // One direct signature (select) + one indirect (where) for one tuple.
  EXPECT_EQ(monitor_->compliance_checks(), 2u);
}

TEST_F(MonitorTest, UnrestrictedBypassesChecks) {
  Scattered(1.0);
  auto rs = monitor_->ExecuteUnrestricted("select user_id from users");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 10u);
  EXPECT_EQ(monitor_->compliance_checks(), 0u);
}

TEST_F(MonitorTest, UserAuthorizationGate) {
  Scattered(0.0);
  ASSERT_TRUE(catalog_->AuthorizeUser("alice", "p1").ok());
  EXPECT_TRUE(
      monitor_->ExecuteQuery("select user_id from users", "p1", "alice").ok());
  auto rs = monitor_->ExecuteQuery("select user_id from users", "p2", "alice");
  EXPECT_EQ(rs.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(MonitorTest, RewriteOnlyDoesNotExecute) {
  Scattered(0.0);
  auto sql = monitor_->Rewrite("select user_id from users", "p1");
  ASSERT_TRUE(sql.ok());
  EXPECT_NE(sql->find("complies_with"), std::string::npos);
  EXPECT_EQ(monitor_->compliance_checks(), 0u);
}

TEST_F(MonitorTest, PurposeResolutionByDescription) {
  Scattered(0.0);
  auto rs = monitor_->ExecuteQuery("select user_id from users", "treatment");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->rows.size(), 10u);
}

// --- Complexity analysis (§5.6). -------------------------------------------

TEST_F(MonitorTest, ComplexityPrimitiveQuery) {
  // q touches sensed_data (50 rows) with 2 signatures: select + where.
  auto est = ComplexityUpperBoundSql(
      *catalog_, "select beats from sensed_data where temperature > 37", "p1");
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->upper_bound, 100u);
  ASSERT_EQ(est->terms.size(), 1u);
  EXPECT_EQ(est->terms[0].tuples, 50u);
  EXPECT_EQ(est->terms[0].action_signatures, 2u);
}

TEST_F(MonitorTest, ComplexityStructuredQueryAddsSubqueries) {
  auto est = ComplexityUpperBoundSql(
      *catalog_,
      "select user_id from users where nutritional_profile_id in "
      "(select profile_id from nutritional_profiles)",
      "p1");
  ASSERT_TRUE(est.ok());
  // users: 2 signatures x 10; profiles: 1 signature x 10.
  EXPECT_EQ(est->upper_bound, 30u);
  EXPECT_EQ(est->terms.size(), 2u);
}

TEST_F(MonitorTest, ComplexityIgnoresUnprotectedTables) {
  auto est = ComplexityUpperBoundSql(*catalog_, "select id from pr", "p1");
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->upper_bound, 0u);
  EXPECT_TRUE(est->terms.empty());
}

TEST_F(MonitorTest, MeasuredChecksNeverExceedBound) {
  Scattered(0.0);  // Worst case: every tuple passes every check.
  std::vector<workload::BenchQuery> queries = workload::PaperQueries();
  for (auto& q : workload::RandomQueries(5)) queries.push_back(std::move(q));
  for (const auto& q : queries) {
    auto est = ComplexityUpperBoundSql(*catalog_, q.sql, "p3");
    ASSERT_TRUE(est.ok()) << q.name;
    monitor_->ResetComplianceChecks();
    ASSERT_TRUE(monitor_->ExecuteQuery(q.sql, "p3").ok()) << q.name;
    EXPECT_LE(monitor_->compliance_checks(), est->upper_bound) << q.name;
  }
}

}  // namespace
}  // namespace aapac::core
