// The denial explainer: ExplainCompliesWith must agree with CompliesWith
// and name the exact action-signature bits each policy rule fails to cover,
// and MaskLayout::DescribeBit/ComponentOf must turn those positions into the
// column/purpose/action names the \explain report prints.
//
// Layout used throughout: columns {a,b,c} + purposes {p1,p2} + 10 action
// bits, padded to 16. Bit positions: a=0 b=1 c=2 | p1=3 p2=4 | indirect=5
// direct=6 single=7 multiple=8 aggregate=9 non-aggregate=10 | joint i=11
// q=12 s=13 g=14 | padding=15.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/compliance.h"
#include "core/masks.h"
#include "core/monitor.h"
#include "workload/patients.h"
#include "workload/policies.h"

namespace aapac::core {
namespace {

class DenialExplainTest : public ::testing::Test {
 protected:
  DenialExplainTest() : layout_({"a", "b", "c"}, {"p1", "p2"}) {}

  static ActionType Benign() {
    return ActionType::Direct(Multiplicity::kMultiple,
                              Aggregation::kNoAggregation, JointAccess::All());
  }

  BitString Sig(std::set<std::string> cols, const std::string& purpose,
                const ActionType& at = Benign()) {
    ActionSignature as;
    as.columns = std::move(cols);
    as.action_type = at;
    auto mask = layout_.EncodeActionSignature(as, purpose);
    EXPECT_TRUE(mask.ok()) << mask.status();
    return mask.ok() ? *mask : BitString{};
  }

  BitString Rule(std::set<std::string> cols, std::set<std::string> purposes,
                 const ActionType& at = Benign()) {
    PolicyRule rule;
    rule.columns = std::move(cols);
    rule.purposes = std::move(purposes);
    rule.action_type = at;
    auto mask = layout_.EncodeRule(rule);
    EXPECT_TRUE(mask.ok()) << mask.status();
    return mask.ok() ? *mask : BitString{};
  }

  MaskLayout layout_;
};

TEST_F(DenialExplainTest, MissingColumnBitIsNamed) {
  const BitString sig = Sig({"a", "c"}, "p1");
  const BitString rule = Rule({"a"}, {"p1"});
  const ComplianceExplanation ex = ExplainCompliesWith(sig, rule);
  EXPECT_FALSE(ex.complies);
  EXPECT_EQ(ex.complies, CompliesWith(sig, rule));
  ASSERT_EQ(ex.rules.size(), 1u);
  EXPECT_EQ(ex.rules[0].rule_index, 0u);
  ASSERT_EQ(ex.rules[0].missing_bits, std::vector<size_t>{2});
  EXPECT_EQ(layout_.DescribeBit(2), "column 'c'");
  EXPECT_EQ(layout_.ComponentOf(2), "columns");
}

TEST_F(DenialExplainTest, MissingPurposeBitIsNamed) {
  const BitString sig = Sig({"a"}, "p2");
  const BitString rule = Rule({"a"}, {"p1"});
  const ComplianceExplanation ex = ExplainCompliesWith(sig, rule);
  EXPECT_FALSE(ex.complies);
  ASSERT_EQ(ex.rules.size(), 1u);
  ASSERT_EQ(ex.rules[0].missing_bits, std::vector<size_t>{4});
  EXPECT_EQ(layout_.DescribeBit(4), "purpose 'p2'");
  EXPECT_EQ(layout_.ComponentOf(4), "purposes");
}

TEST_F(DenialExplainTest, MissingActionTypeBitsAreNamed) {
  // Rule allows only single-tuple aggregate access; the signature does a
  // multi-tuple non-aggregate read, so exactly the multiple (8) and
  // non-aggregate (10) bits are uncovered.
  const ActionType sig_at = ActionType::Direct(
      Multiplicity::kMultiple, Aggregation::kNoAggregation, JointAccess::All());
  const ActionType rule_at = ActionType::Direct(
      Multiplicity::kSingle, Aggregation::kAggregation, JointAccess::All());
  const BitString sig = Sig({"a"}, "p1", sig_at);
  const BitString rule = Rule({"a"}, {"p1"}, rule_at);
  const ComplianceExplanation ex = ExplainCompliesWith(sig, rule);
  EXPECT_FALSE(ex.complies);
  ASSERT_EQ(ex.rules.size(), 1u);
  EXPECT_EQ(ex.rules[0].missing_bits, (std::vector<size_t>{8, 10}));
  EXPECT_EQ(layout_.DescribeBit(8), "action 'multiple'");
  EXPECT_EQ(layout_.DescribeBit(10), "action 'non-aggregate'");
  EXPECT_EQ(layout_.ComponentOf(8), "action-type");
}

TEST_F(DenialExplainTest, MissingJointAccessBitIsNamed) {
  JointAccess sensitive_only;
  sensitive_only.sensitive = true;
  JointAccess all_but_sensitive = JointAccess::All();
  all_but_sensitive.sensitive = false;
  const BitString sig =
      Sig({"a"}, "p1",
          ActionType::Direct(Multiplicity::kMultiple,
                             Aggregation::kNoAggregation, sensitive_only));
  const BitString rule =
      Rule({"a"}, {"p1"},
           ActionType::Direct(Multiplicity::kMultiple,
                              Aggregation::kNoAggregation, all_but_sensitive));
  const ComplianceExplanation ex = ExplainCompliesWith(sig, rule);
  EXPECT_FALSE(ex.complies);
  ASSERT_EQ(ex.rules.size(), 1u);
  ASSERT_EQ(ex.rules[0].missing_bits, std::vector<size_t>{13});
  EXPECT_EQ(layout_.DescribeBit(13), "action 'joint:sensitive'");
}

TEST_F(DenialExplainTest, SecondRuleAcceptingShortCircuitsToCompliance) {
  const BitString sig = Sig({"a"}, "p1");
  BitString policy = layout_.PassNoneRuleMask();
  policy.Append(layout_.PassAllRuleMask());
  const ComplianceExplanation ex = ExplainCompliesWith(sig, policy);
  EXPECT_TRUE(ex.complies);
  EXPECT_EQ(ex.complies, CompliesWith(sig, policy));
  EXPECT_EQ(ex.accepting_rule, 1u);
  // On acceptance no denials are reported — rules is only populated when the
  // whole policy denies.
  EXPECT_TRUE(ex.rules.empty());
}

TEST_F(DenialExplainTest, AllRejectingRulesAreListedInOrder) {
  const BitString sig = Sig({"a"}, "p1");
  BitString policy = layout_.PassNoneRuleMask();
  policy.Append(layout_.PassNoneRuleMask());
  const ComplianceExplanation ex = ExplainCompliesWith(sig, policy);
  EXPECT_FALSE(ex.complies);
  ASSERT_EQ(ex.rules.size(), 2u);
  EXPECT_EQ(ex.rules[0].rule_index, 0u);
  EXPECT_EQ(ex.rules[1].rule_index, 1u);
  EXPECT_EQ(ex.rules[0].missing_bits, ex.rules[1].missing_bits);
}

TEST_F(DenialExplainTest, LengthMismatchIsReportedBeforeAnyRule) {
  const BitString sig = Sig({"a"}, "p1");
  const ComplianceExplanation ex =
      ExplainCompliesWith(sig, BitString(sig.size() + 3));
  EXPECT_FALSE(ex.complies);
  EXPECT_TRUE(ex.length_mismatch);
  EXPECT_TRUE(ex.rules.empty());
  EXPECT_FALSE(CompliesWith(sig, BitString(sig.size() + 3)));
}

// End to end: \explain's compliance analysis on a monitor whose policies
// deny everything must name the failing bits with their policy component.
TEST_F(DenialExplainTest, ExplainQueryNamesFailingBitsAndComponents) {
  auto db = std::make_unique<engine::Database>();
  workload::PatientsConfig config;
  config.num_patients = 5;
  config.samples_per_patient = 2;
  ASSERT_TRUE(workload::BuildPatientsDatabase(db.get(), config).ok());
  auto catalog = std::make_unique<AccessControlCatalog>(db.get());
  ASSERT_TRUE(catalog->Initialize().ok());
  ASSERT_TRUE(workload::ConfigurePatientsAccessControl(catalog.get()).ok());
  workload::ScatteredPolicyConfig sp;
  sp.selectivity = 1.0;  // Every tuple's policy is pass-none: all denied.
  ASSERT_TRUE(workload::ApplyScatteredPolicies(catalog.get(), sp).ok());
  EnforcementMonitor monitor(db.get(), catalog.get());

  auto report = monitor.ExplainQuery("select user_id from users", "p3");
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_NE(report->find("== compliance analysis =="), std::string::npos);
  EXPECT_NE(report->find("DENIED"), std::string::npos) << *report;
  EXPECT_NE(report->find("misses:"), std::string::npos) << *report;
  // A pass-none rule misses every signature bit, so the report must name
  // the accessed column, the access purpose and action bits, each tagged
  // with its mask component.
  EXPECT_NE(report->find("column 'user_id'"), std::string::npos) << *report;
  EXPECT_NE(report->find("purpose 'p3'"), std::string::npos) << *report;
  EXPECT_NE(report->find(", columns]"), std::string::npos) << *report;
  EXPECT_NE(report->find(", purposes]"), std::string::npos) << *report;
  EXPECT_NE(report->find(", action-type]"), std::string::npos) << *report;

  // Sanity: the analysis agrees with enforcement — the query really returns
  // nothing under the deny-all policies.
  auto rs = monitor.ExecuteQuery("select user_id from users", "p3");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_TRUE(rs->rows.empty());
}

}  // namespace
}  // namespace aapac::core
